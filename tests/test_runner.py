"""Tests for the batch runner: registry, scenarios, engine, CLI."""

import json
import pathlib

import numpy as np
import pytest

import repro.offline
import repro.online
from repro.online.base import OnlineAlgorithm
from repro.runner import (GridSpec, aggregate_rows, algorithm_names,
                          algorithm_table, build_instance, cache_path,
                          get_spec, make_algorithm, make_solver,
                          run_grid, scenario_names, solver_names,
                          trace_suite)
from repro.runner import engine as engine_mod
from tests.conftest import random_convex_instance


class TestRegistry:
    def test_every_online_name_resolves(self):
        for name in algorithm_names():
            algo = make_algorithm(name, lookahead=2, seed=7)
            assert isinstance(algo, OnlineAlgorithm), name

    def test_every_solver_name_resolves_and_solves(self, rng):
        inst = random_convex_instance(rng, 5, 3, 1.5)
        for name in solver_names():
            res = make_solver(name)(inst)
            assert res.cost >= 0, name
            assert res.schedule.shape == (inst.T,), name

    def test_exact_solvers_agree_with_dp(self, rng):
        from repro.offline import solve_dp
        inst = random_convex_instance(rng, 6, 4, 2.0)
        opt = solve_dp(inst).cost
        for name in solver_names():
            spec = get_spec(name)
            if spec.optimal and spec.discrete:
                assert make_solver(name)(inst).cost == pytest.approx(opt), \
                    name

    def test_registry_covers_every_exported_online_algorithm(self):
        covered = {type(make_algorithm(name)) for name in algorithm_names()}
        for export in repro.online.__all__:
            obj = getattr(repro.online, export)
            if (isinstance(obj, type) and issubclass(obj, OnlineAlgorithm)
                    and obj is not OnlineAlgorithm):
                assert obj in covered, f"{export} missing from registry"

    def test_registry_covers_every_exported_general_solver(self):
        # solve_restricted consumes a RestrictedInstance, not a general
        # Instance, so it cannot run under the engine's job shape.
        resolved = {make_solver(name) for name in solver_names()}
        for export in repro.offline.__all__:
            if export.startswith("solve_") and export != "solve_restricted":
                assert getattr(repro.offline, export) in resolved, \
                    f"{export} missing from registry"

    def test_kind_mixups_rejected(self):
        with pytest.raises(ValueError, match="offline solver"):
            make_algorithm("dp")
        with pytest.raises(ValueError, match="online algorithm"):
            make_solver("lcp")
        with pytest.raises(KeyError, match="unknown algorithm"):
            get_spec("nope")

    def test_table_lists_every_name(self):
        table = algorithm_table()
        for name in algorithm_names() + solver_names():
            assert f"`{name}`" in table


class TestScenarios:
    def test_every_scenario_builds_reproducibly(self):
        for name in scenario_names():
            a = build_instance(name, 12, seed=3)
            b = build_instance(name, 12, seed=3)
            assert a.T == 12
            np.testing.assert_array_equal(a.F, b.F)
            assert a.beta == b.beta

    def test_seeds_vary_random_scenarios(self):
        a = build_instance("random-convex", 12, seed=0)
        b = build_instance("random-convex", 12, seed=1)
        assert not np.array_equal(a.F, b.F)

    def test_tag_filter(self):
        assert "adversarial-hinge" in scenario_names("adversarial")
        assert "diurnal" not in scenario_names("adversarial")

    def test_trace_suite_families(self):
        suite = trace_suite(T=24)
        assert [name for name, _ in suite] == [
            "diurnal", "msr-like", "hotmail-like", "bursty", "onoff"]
        assert all(inst.T == 24 for _, inst in suite)

    def test_benchmarks_conftest_reuses_catalog(self):
        # the benchmark suite must not re-grow its own copy
        root = pathlib.Path(__file__).resolve().parent.parent
        text = (root / "benchmarks" / "conftest.py").read_text()
        assert "from repro.runner.scenarios import trace_suite" in text
        assert "from repro.workloads import random_convex_instance" in text


SMALL = GridSpec(scenarios=("diurnal", "random-convex"),
                 algorithms=("lcp", "randomized"),
                 seeds=(0, 1), sizes=(24,))


class TestEngine:
    def test_rows_match_jobs(self):
        rows = run_grid(SMALL)
        assert len(rows) == len(SMALL) == 8
        assert all(1.0 - 1e-9 <= r["ratio"] for r in rows)

    def test_parallel_identical_to_serial(self):
        rows1 = run_grid(SMALL, n_jobs=1)
        rows4 = run_grid(SMALL, n_jobs=4)
        assert rows1 == rows4  # bit-identical, including float fields

    def test_offline_solver_jobs_have_ratio_one(self):
        rows = run_grid(GridSpec(scenarios=("diurnal",),
                                 algorithms=("binary_search", "dp"),
                                 seeds=(0,), sizes=(16,)))
        assert all(r["ratio"] == pytest.approx(1.0) for r in rows)

    def test_instance_seed_pins_the_instance(self):
        rows = run_grid(GridSpec(scenarios=("diurnal",),
                                 algorithms=("randomized",),
                                 seeds=(0, 1, 2), sizes=(24,),
                                 instance_seed=4))
        assert len({r["opt"] for r in rows}) == 1   # same instance
        assert len({r["cost"] for r in rows}) == 3  # different rounding

    def test_cache_hit_skips_recomputation(self, tmp_path, monkeypatch):
        rows = run_grid(SMALL, cache_dir=tmp_path)
        assert cache_path(SMALL, tmp_path).exists()
        calls = []
        real = engine_mod._run_job
        monkeypatch.setattr(engine_mod, "_run_job",
                            lambda job: calls.append(job) or real(job))
        cached = run_grid(SMALL, cache_dir=tmp_path)
        assert cached == rows and not calls
        forced = run_grid(SMALL, cache_dir=tmp_path, force=True)
        assert forced == rows and len(calls) == len(SMALL)

    def test_cache_invalidated_by_spec_change(self, tmp_path):
        run_grid(SMALL, cache_dir=tmp_path)
        changed = GridSpec(scenarios=SMALL.scenarios,
                           algorithms=SMALL.algorithms,
                           seeds=(0, 1, 2), sizes=SMALL.sizes)
        assert cache_path(changed, tmp_path) != cache_path(SMALL, tmp_path)
        rows = run_grid(changed, cache_dir=tmp_path)
        assert len(rows) == len(changed) == 12

    def test_corrupt_cache_spec_mismatch_recomputes(self, tmp_path):
        path = cache_path(SMALL, tmp_path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps({"spec": {"bogus": True}, "rows": []}))
        rows = run_grid(SMALL, cache_dir=tmp_path)
        assert len(rows) == len(SMALL)

    def test_truncated_cache_file_recomputes(self, tmp_path):
        # an interrupted earlier run must not poison the cache dir
        good = run_grid(SMALL, cache_dir=tmp_path)
        path = cache_path(SMALL, tmp_path)
        path.write_text(path.read_text()[:40])
        rows = run_grid(SMALL, cache_dir=tmp_path)
        assert rows == good
        assert json.loads(path.read_text())["rows"] == good  # rewritten

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            GridSpec(scenarios=(), algorithms=("lcp",))

    def test_negative_seed_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            GridSpec(scenarios=("diurnal",), algorithms=("lcp",),
                     seeds=(-1,))
        with pytest.raises(ValueError, match="positive horizon"):
            GridSpec(scenarios=("diurnal",), algorithms=("lcp",),
                     sizes=(0,))

    def test_aggregate_keeps_sizes_apart(self):
        rows = run_grid(GridSpec(scenarios=("sawtooth",),
                                 algorithms=("lcp",), seeds=(0,),
                                 sizes=(16, 32)))
        agg = aggregate_rows(rows)
        assert [a["T"] for a in agg] == [16, 32]  # never averaged across T

    def test_aggregate_rows(self):
        rows = run_grid(SMALL)
        agg = aggregate_rows(rows)
        assert len(agg) == 4  # 2 scenarios x 2 algorithms
        first = agg[0]
        assert first["n"] == 2
        assert first["max_ratio"] >= first["mean_ratio"] >= 1.0 - 1e-9


def _measure(T: int, m: int) -> dict:
    return {"area": T * m}


class TestAnalysisSweep:
    def test_sweep_serial_and_parallel_agree(self):
        from repro.analysis import sweep
        grid = {"T": [2, 3], "m": [4, 5, 6]}
        serial = sweep(_measure, grid)
        parallel = sweep(_measure, grid, n_jobs=2)
        assert serial == parallel
        assert serial[0] == {"T": 2, "m": 4, "area": 8}
        assert len(serial) == 6


class TestCLI:
    def test_sweep_runs_grid(self, capsys):
        from repro.cli import main
        rc = main(["sweep", "--scenarios", "diurnal,bursty,sawtooth",
                   "--algorithms", "lcp,threshold,randomized,memoryless",
                   "--seeds", "0,1,2", "-T", "16", "--per-row"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "aggregate ratios" in out and "sawtooth" in out
        assert "36 jobs" in out

    def test_sweep_list(self, capsys):
        from repro.cli import main
        assert main(["sweep", "--list"]) == 0
        out = capsys.readouterr().out
        assert "adversarial-hinge" in out and "`binary_search`" in out

    def test_sweep_rejects_unknown_names(self):
        from repro.cli import main
        with pytest.raises(SystemExit, match="unknown scenario"):
            main(["sweep", "--scenarios", "nope"])
        with pytest.raises(SystemExit, match="unknown algorithm"):
            main(["sweep", "--algorithms", "oracle"])

    def test_bench_smoke_grid(self, tmp_path, capsys):
        from repro.cli import main
        rc = main(["bench", "--grid", "smoke",
                   "--cache-dir", str(tmp_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "jobs/s" in out
        assert list(tmp_path.glob("grid_*.json"))


class TestReadmeTable:
    def test_readme_algorithm_table_is_current(self):
        root = pathlib.Path(__file__).resolve().parent.parent
        text = (root / "README.md").read_text()
        begin = text.index("BEGIN ALGORITHM TABLE")
        end = text.index("<!-- END ALGORITHM TABLE -->")
        block = text[text.index("\n", begin) + 1:end].strip()
        assert block == algorithm_table(), \
            "README table stale — regenerate with " \
            "`python -m repro.runner.registry`"
