"""Tests for the paper's O(T log m) binary-search algorithm (Theorem 1)."""

import numpy as np
import pytest

from repro.core.instance import Instance
from repro.core.schedule import cost
from repro.offline import (solve_binary_search, solve_dp, window_states,
                           windowed_dp)
from tests.conftest import (bowl_instance, hinge_instance,
                            random_convex_instance, trace_instance)


class TestOptimality:
    def test_matches_dp_random(self):
        rng = np.random.default_rng(50)
        for _ in range(40):
            T = int(rng.integers(1, 15))
            m = int(rng.integers(1, 35))
            inst = random_convex_instance(rng, T, m,
                                          float(rng.uniform(0.2, 5.0)))
            bs = solve_binary_search(inst, validate=True)
            dp = solve_dp(inst)
            assert bs.cost == pytest.approx(dp.cost), (T, m)
            assert cost(inst, bs.schedule) == pytest.approx(bs.cost)

    @pytest.mark.parametrize("m", [1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31,
                                   32, 33, 63, 64, 100, 128])
    def test_all_m_shapes(self, m):
        """Power-of-two boundaries and the m <= 3 special case."""
        rng = np.random.default_rng(51 + m)
        inst = random_convex_instance(rng, 8, m, 1.7)
        assert solve_binary_search(inst).cost == pytest.approx(
            solve_dp(inst).cost)

    def test_hinge_and_bowl_families(self):
        for inst in (hinge_instance([0, 9, 3, 9, 0], m=12, beta=2.0),
                     bowl_instance([2, 10, 5, 11], m=12, beta=0.5)):
            assert solve_binary_search(inst).cost == pytest.approx(
                solve_dp(inst).cost)

    def test_trace_instance(self):
        inst = trace_instance(seed=3, T=72, peak=20.0, beta=5.0)
        assert solve_binary_search(inst).cost == pytest.approx(
            solve_dp(inst).cost)

    def test_eps_insensitivity(self):
        """Any positive padding eps yields the optimum (Section 2.2)."""
        rng = np.random.default_rng(52)
        inst = random_convex_instance(rng, 10, 21, 1.0)
        baseline = solve_dp(inst).cost
        for eps in (1e-6, 1e-3, 1.0, 1e3):
            assert solve_binary_search(inst, eps=eps).cost == pytest.approx(
                baseline), eps

    def test_large_m_spot_check(self):
        rng = np.random.default_rng(53)
        inst = random_convex_instance(rng, 12, 500, 3.0)
        assert solve_binary_search(inst).cost == pytest.approx(
            solve_dp(inst).cost)

    def test_empty_horizon(self):
        inst = Instance(beta=1.0, F=np.zeros((0, 9)))
        res = solve_binary_search(inst)
        assert res.cost == 0.0


class TestIterationStructure:
    def test_iteration_count_formula(self):
        """log2(m') - 1 iterations for padded m' >= 4 (Section 2.2)."""
        rng = np.random.default_rng(54)
        for m, expected in [(4, 1), (5, 2), (8, 2), (16, 3), (64, 5),
                            (100, 6), (128, 6)]:
            inst = random_convex_instance(rng, 3, m, 1.0)
            res = solve_binary_search(inst)
            assert res.iterations == expected, m

    def test_small_m_single_iteration(self):
        rng = np.random.default_rng(55)
        for m in (1, 2, 3):
            inst = random_convex_instance(rng, 3, m, 1.0)
            assert solve_binary_search(inst).iterations == 1


class TestWindowedDP:
    def test_full_window_equals_dp(self):
        rng = np.random.default_rng(56)
        inst = random_convex_instance(rng, 6, 4, 1.1)
        S = np.broadcast_to(np.arange(5, dtype=np.int64), (6, 5)).copy()
        schedule, c = windowed_dp(inst, S)
        assert c == pytest.approx(solve_dp(inst).cost)

    def test_restricted_window_is_restricted_optimum(self):
        """The window DP must match brute force over the window states."""
        import itertools
        rng = np.random.default_rng(57)
        inst = random_convex_instance(rng, 4, 6, 1.4)
        S = np.array([[0, 2, 4, 6, 6]] * 4, dtype=np.int64)
        schedule, c = windowed_dp(inst, S)
        best = min(cost(inst, np.array(Z))
                   for Z in itertools.product([0, 2, 4, 6], repeat=4))
        assert c == pytest.approx(best)

    def test_duplicate_states_harmless(self):
        rng = np.random.default_rng(58)
        inst = random_convex_instance(rng, 3, 4, 1.0)
        S1 = np.array([[0, 1, 2, 3, 4]] * 3, dtype=np.int64)
        S2 = np.array([[0, 0, 1, 2, 2, 3, 4, 4]] * 3, dtype=np.int64)
        assert windowed_dp(inst, S1)[1] == pytest.approx(
            windowed_dp(inst, S2)[1])

    def test_row_count_checked(self):
        rng = np.random.default_rng(59)
        inst = random_convex_instance(rng, 3, 4, 1.0)
        with pytest.raises(ValueError):
            windowed_dp(inst, np.zeros((2, 5), dtype=np.int64))


class TestWindowStates:
    def test_refinement_shape_and_grid(self):
        centers = np.array([0, 4, 8], dtype=np.int64)
        S = window_states(centers, half_step=2, m_padded=8)
        assert S.shape == (3, 5)
        assert np.all(S % 2 == 0)
        assert S.min() >= 0 and S.max() <= 8

    def test_clamping_at_boundaries(self):
        S = window_states(np.array([0], dtype=np.int64), 2, 8)
        assert S.min() == 0
        S = window_states(np.array([8], dtype=np.int64), 2, 8)
        assert S.max() == 8

    def test_contains_xi_range(self):
        S = window_states(np.array([4], dtype=np.int64), 1, 8)
        np.testing.assert_array_equal(S[0], [2, 3, 4, 5, 6])


class TestAblation:
    def test_coarse_grid_alone_is_suboptimal(self):
        """Without the refinement iterations (only the iteration-K grid
        {0, m/4, m/2, 3m/4, m}) the result must be suboptimal on some
        instances — the refinement loop does real work."""
        rng = np.random.default_rng(60)
        failures = 0
        for _ in range(60):
            T = int(rng.integers(2, 8))
            m = int(rng.integers(8, 33))
            inst = random_convex_instance(rng, T, m,
                                          float(rng.uniform(0.2, 3.0)))
            opt = solve_dp(inst, return_schedule=False).cost
            coarse = _binary_search_truncated(inst, keep_iterations=1)
            if coarse > opt + 1e-9:
                failures += 1
        assert failures > 20

    def test_every_refinement_level_contributes(self):
        """Stopping the refinement one level early (skipping k = 0) also
        loses optimality on some instances."""
        rng = np.random.default_rng(61)
        failures = 0
        for _ in range(60):
            T = int(rng.integers(2, 8))
            m = int(rng.integers(8, 33))
            inst = random_convex_instance(rng, T, m,
                                          float(rng.uniform(0.2, 3.0)))
            opt = solve_dp(inst, return_schedule=False).cost
            if _binary_search_truncated(inst, skip_last=True) > opt + 1e-9:
                failures += 1
        assert failures > 10

    def test_refining_around_greedy_schedule_fails(self):
        """The windows must be centered on the *optimal* coarse schedule
        (Lemma 5); refining around a greedy per-step schedule loses
        optimality."""
        from repro._util import argmin_first
        rng = np.random.default_rng(62)
        failures = 0
        for _ in range(60):
            T = int(rng.integers(2, 8))
            m = int(rng.integers(8, 33))
            inst = random_convex_instance(rng, T, m,
                                          float(rng.uniform(0.2, 3.0)))
            opt = solve_dp(inst, return_schedule=False).cost
            greedy = np.array([argmin_first(inst.F[t]) for t in range(T)],
                              dtype=np.int64)
            S = window_states(greedy, 1, inst.m)
            _, c = windowed_dp(inst, S)
            if c > opt + 1e-9:
                failures += 1
        assert failures > 10

    def test_span1_matches_on_random_families(self):
        """Empirical note recorded as a test: with our smallest-tie window
        DP, the half-window (xi in {-1,0,1}) also recovered the optimum on
        every generated instance.  The guarantee proven in the paper
        (Lemma 5) only covers xi in {-2..2}, which is what
        solve_binary_search uses; this test documents — not relies on —
        the empirical slack."""
        rng = np.random.default_rng(63)
        for _ in range(40):
            T = int(rng.integers(2, 8))
            m = int(rng.integers(5, 33))
            inst = random_convex_instance(rng, T, m,
                                          float(rng.uniform(0.2, 3.0)))
            opt = solve_dp(inst, return_schedule=False).cost
            assert _binary_search_span1(inst) <= opt + 1e-9


def _binary_search_span1(inst) -> float:
    """Binary search variant with xi in {-1, 0, 1} (for the ablation)."""
    from repro.core.transforms import next_power_of_two

    T, m = inst.T, inst.m
    if m <= 3:
        return solve_dp(inst, return_schedule=False).cost
    m_padded = next_power_of_two(m)
    K = int(np.log2(m_padded)) - 2
    quarter = m_padded // 4
    S = np.broadcast_to(np.arange(5, dtype=np.int64) * quarter, (T, 5)).copy()
    schedule, c = windowed_dp(inst, S)
    for k in range(K, 0, -1):
        S = window_states(schedule, 1 << (k - 1), m_padded, span=1)
        schedule, c = windowed_dp(inst, S)
    return c


def _binary_search_truncated(inst, keep_iterations: int | None = None,
                             skip_last: bool = False) -> float:
    """Binary search stopped early (for the ablations)."""
    from repro.core.transforms import next_power_of_two

    T, m = inst.T, inst.m
    if m <= 3:
        return solve_dp(inst, return_schedule=False).cost
    m_padded = next_power_of_two(m)
    K = int(np.log2(m_padded)) - 2
    quarter = m_padded // 4
    S = np.broadcast_to(np.arange(5, dtype=np.int64) * quarter, (T, 5)).copy()
    schedule, c = windowed_dp(inst, S)
    done = 1
    # The loop iteration with index k produces the grid-2^(k-1) schedule;
    # skipping the k = 1 iteration leaves the result on the even grid.
    last_k = 2 if skip_last else 1
    for k in range(K, last_k - 1, -1):
        if keep_iterations is not None and done >= keep_iterations:
            break
        S = window_states(schedule, 1 << (k - 1), m_padded)
        schedule, c = windowed_dp(inst, S)
        done += 1
    return c
