"""Online algorithms: LCP (Section 3), the 2-competitive fractional
threshold rule + randomized rounding (Section 4), algorithm B (Section 5),
and baselines."""

from .bansal_b import AlgorithmB
from .base import (OnlineAlgorithm, OnlineResult, run_online,
                   run_online_many)
from .greedy import FollowTheMinimizer, NeverSwitchOn, solve_static
from .lcp import LCP, EagerLCP, lookahead_bounds
from .memoryless import MemorylessBalance
from .randomized import (RandomizedRounding, RoundingDistribution, ceil_star,
                         exact_rounding_distribution, expected_cost_exact,
                         expected_cost_independent, independent_rounding,
                         sample_rounding, transition_prob_up)
from .receding import AveragingFixedHorizonControl, RecedingHorizonControl
from .threshold import ThresholdFractional
from .workfunction import WorkFunctions, update_CL, update_CU

__all__ = [
    "OnlineAlgorithm", "OnlineResult", "run_online",
    "run_online_many",
    "WorkFunctions", "update_CL", "update_CU",
    "LCP", "EagerLCP", "lookahead_bounds",
    "ThresholdFractional", "AlgorithmB",
    "RandomizedRounding", "RoundingDistribution", "ceil_star",
    "exact_rounding_distribution", "expected_cost_exact", "sample_rounding",
    "independent_rounding", "expected_cost_independent",
    "transition_prob_up",
    "MemorylessBalance",
    "RecedingHorizonControl", "AveragingFixedHorizonControl",
    "FollowTheMinimizer", "NeverSwitchOn", "solve_static",
]
