"""E14 — extension demo: heterogeneous fleets (two server types).

Not a paper experiment (the paper is homogeneous; the authors develop
the heterogeneous case in follow-up work) — this bench demonstrates and
times the exact product-space DP and records the fleet-mix behavior:
the frugal type carries the base load, the fast type rides the peaks,
and the exact DP beats static pairs and per-step greedy.

Engine-backed: the policy table is one ``run_grid`` over the
``hetero-fleet`` scenario's hetero pipeline, so the heterogeneous rows
flow through the same aggregate tables as every other experiment.
"""

import numpy as np
import pytest

from repro.extensions import hetero_cost, solve_dp_hetero, solve_static_hetero
from repro.runner import GridSpec, build_instance, run_grid

from conftest import record


def test_e14_policy_table(benchmark):
    grid_rows = run_grid(GridSpec(scenarios=("hetero-fleet",),
                                  algorithms=("dp_hetero", "static_hetero",
                                              "greedy_hetero"),
                                  seeds=(0,), sizes=(96,)))
    rows = [{"policy": r["algorithm"], "cost": r["cost"],
             "cost_over_opt": r["ratio"]} for r in grid_rows]
    record("E14_hetero_policies", rows,
           title="E14: two-type fleet policies (extension)")
    by = {r["algorithm"]: r for r in grid_rows}
    assert by["dp_hetero"]["ratio"] == pytest.approx(1.0)
    assert by["static_hetero"]["ratio"] >= 1.0 - 1e-9
    assert by["greedy_hetero"]["ratio"] >= 1.0 - 1e-9
    inst = build_instance("hetero-fleet", 96, 0, pipeline="hetero")
    benchmark(solve_dp_hetero, inst)


def test_e14_mix_shifts_with_demand(benchmark):
    """The optimal mix uses proportionally more fast servers at peak."""
    inst = build_instance("hetero-fleet", 96, 3, pipeline="hetero")
    X1, X2, opt = solve_dp_hetero(inst)
    assert abs(hetero_cost(inst, X1, X2) - opt) < 1e-9
    # Peak hours (around t = 12 mod 24) vs trough hours (t = 0 mod 24).
    peak_idx = [t for t in range(inst.T) if 8 <= t % 24 <= 16]
    trough_idx = [t for t in range(inst.T) if t % 24 <= 4]
    peak_fast = float(np.mean(X1[peak_idx]))
    trough_fast = float(np.mean(X1[trough_idx]))
    rows = [{"window": "peak hours", "type1_mean": peak_fast,
             "type2_mean": float(np.mean(X2[peak_idx]))},
            {"window": "trough hours", "type1_mean": trough_fast,
             "type2_mean": float(np.mean(X2[trough_idx]))}]
    record("E14_mix_shift", rows, title="E14: fleet mix by time of day")
    assert peak_fast > trough_fast
    benchmark(solve_static_hetero, inst)
