"""E4 — Theorem 2: discrete LCP is 3-competitive.

Regenerates the empirical competitive-ratio table of LCP across workload
families and switching costs: every ratio must stay below 3, with the
adversarial hinge family pushing toward it.
"""

import numpy as np

from repro.analysis import optimal_cost
from repro.online import LCP, run_online
from repro.runner import GridSpec, run_grid
from repro.runner.scenarios import TRACE_FAMILIES, adversarial_hinge_instance

from conftest import record, trace_suite


def test_e4_ratio_table(benchmark):
    # Engine-backed grid: the five trace families (one seed) plus three
    # random convex instances (one per seed), all through `run_grid`.
    grid_rows = run_grid(GridSpec(scenarios=TRACE_FAMILIES,
                                  algorithms=("lcp",), seeds=(0,),
                                  sizes=(168,)))
    grid_rows += run_grid(GridSpec(scenarios=("random-convex",),
                                   algorithms=("lcp",), seeds=(0, 1, 2),
                                   sizes=(100,)))
    rows = [{"workload": f"{r['scenario']}/{r['seed']}", "beta": r["beta"],
             "lcp_cost": r["cost"], "opt_cost": r["opt"],
             "ratio": r["ratio"]} for r in grid_rows]
    record("E4_lcp_ratios", rows, title="E4: LCP competitive ratios")
    assert max(r["ratio"] for r in grid_rows) <= 3.0 + 1e-7
    # Timing: LCP replay on a long trace.
    name, inst = trace_suite(T=2000)[1]
    benchmark(run_online, inst, LCP())


def test_e4_adversarial_ratio_approaches_three(benchmark):
    rows = []
    for eps in (0.2, 0.1, 0.05, 0.02):
        T = int(6 / eps ** 2)
        inst = adversarial_hinge_instance(T, eps)
        res = run_online(inst, LCP())
        opt = optimal_cost(inst)
        rows.append({"eps": eps, "T": T, "ratio": res.cost / opt})
    record("E4_lcp_adversarial", rows,
           title="E4: LCP on the worst-case hinge pattern")
    ratios = [r["ratio"] for r in rows]
    assert ratios[-1] > 2.8
    assert all(r <= 3.0 + 1e-7 for r in ratios)
    benchmark(run_online, adversarial_hinge_instance(2000, 0.05), LCP())


def test_e4_beta_sweep(benchmark):
    """Ratio vs switching cost: LCP's laziness is hardest hit at
    moderate beta."""
    from repro.workloads import (capacity_for, hotmail_like_loads,
                                 instance_from_loads)
    rng = np.random.default_rng(22)
    loads = hotmail_like_loads(168, peak=24.0, rng=rng)
    m = capacity_for(loads)
    rows = []
    for beta in (0.5, 2.0, 8.0, 32.0):
        inst = instance_from_loads(loads, m=m, beta=beta, delay_weight=10.0)
        res = run_online(inst, LCP())
        opt = optimal_cost(inst)
        rows.append({"beta": beta, "ratio": res.cost / opt,
                     "lcp_cost": res.cost, "opt_cost": opt})
    record("E4_beta_sweep", rows, title="E4: LCP ratio vs beta")
    assert all(r["ratio"] <= 3.0 + 1e-7 for r in rows)
    benchmark(run_online, inst, LCP())
