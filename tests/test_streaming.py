"""Tests for the streaming engine core: bounded batches, result sinks,
mid-grid kill + resume, the params axis and the game pipeline."""

import json

import numpy as np
import pytest

from repro.runner import (GridSpec, JobCache, JsonlSink, ListSink,
                          SqliteSink, aggregate_rows, make_sink,
                          read_jsonl_rows, read_sqlite_rows, run_grid)
from repro.runner import engine as engine_mod

GRID = GridSpec(scenarios=("diurnal", "sawtooth"),
                algorithms=("lcp", "threshold", "randomized"),
                seeds=(0, 1), sizes=(20,))


class TestStreaming:
    def test_batched_rows_identical_to_monolithic(self):
        rows = run_grid(GRID)
        for batch_size in (1, 2, 5, 7, 100):
            assert run_grid(GRID, batch_size=batch_size) == rows

    def test_batched_parallel_identical_to_serial(self):
        assert (run_grid(GRID, batch_size=3, n_jobs=4)
                == run_grid(GRID, batch_size=3, n_jobs=1))

    def test_max_pending_bounded_by_batch_size(self):
        """The acceptance property: a grid with batch_size set holds at
        most O(batch_size) pending rows in the parent."""
        stats: dict = {}
        run_grid(GRID, batch_size=4, stats=stats)
        assert stats["max_pending"] <= 4
        assert stats["batches"] == 3  # ceil(12 / 4)
        assert stats["rows_written"] == len(GRID) == 12

    def test_opt_still_solved_once_per_instance_when_batched(self,
                                                             monkeypatch):
        """The record window spans batch boundaries: batching must not
        re-solve an optimum the previous batch already solved."""
        calls = []
        real = engine_mod._solve_instance
        monkeypatch.setattr(engine_mod, "_solve_instance",
                            lambda t: calls.append(t) or real(t))
        run_grid(GRID, batch_size=2)  # algorithms split across batches
        assert len(calls) == 4        # 2 scenarios x 2 seeds, once each

    def test_invalid_batch_size_rejected(self):
        with pytest.raises(ValueError, match="batch_size"):
            run_grid(GRID, batch_size=0)

    def test_sink_parity_list_jsonl_sqlite(self, tmp_path):
        """The tentpole parity property: every sink sees the same rows,
        row for row, in the same order."""
        rows = run_grid(GRID, sink=ListSink(), batch_size=5)
        jsonl_path = run_grid(GRID, sink=JsonlSink(tmp_path / "r.jsonl"),
                              batch_size=5)
        sqlite_path = run_grid(GRID, sink=SqliteSink(tmp_path / "r.db"),
                               batch_size=5)
        assert read_jsonl_rows(jsonl_path) == rows
        assert read_sqlite_rows(sqlite_path) == rows

    def test_file_sinks_round_trip_cached_rows(self, tmp_path):
        """Rows served from the job cache and rows computed live are
        indistinguishable through a file sink."""
        live = run_grid(GRID, cache_dir=tmp_path / "cache",
                        sink=JsonlSink(tmp_path / "live.jsonl"))
        cached = run_grid(GRID, cache_dir=tmp_path / "cache",
                          sink=JsonlSink(tmp_path / "cached.jsonl"))
        assert read_jsonl_rows(live) == read_jsonl_rows(cached)

    def test_file_sinks_truncate_by_default_append_on_request(self,
                                                              tmp_path):
        path = tmp_path / "rows.jsonl"
        run_grid(GRID, sink=JsonlSink(path))
        run_grid(GRID, sink=JsonlSink(path))
        assert len(read_jsonl_rows(path)) == len(GRID)
        run_grid(GRID, sink=JsonlSink(path, append=True))
        assert len(read_jsonl_rows(path)) == 2 * len(GRID)
        db = tmp_path / "rows.db"
        run_grid(GRID, sink=SqliteSink(db))
        run_grid(GRID, sink=SqliteSink(db))
        assert len(read_sqlite_rows(db)) == len(GRID)

    def test_make_sink(self, tmp_path):
        assert isinstance(make_sink("list"), ListSink)
        assert isinstance(make_sink("jsonl", tmp_path / "a.jsonl"),
                          JsonlSink)
        assert isinstance(make_sink("sqlite", tmp_path / "a.db"),
                          SqliteSink)
        with pytest.raises(ValueError, match="needs a path"):
            make_sink("jsonl")
        with pytest.raises(ValueError, match="unknown sink"):
            make_sink("parquet")

    def test_aggregates_identical_through_file_sink(self, tmp_path):
        rows = run_grid(GRID)
        path = run_grid(GRID, sink=JsonlSink(tmp_path / "r.jsonl"),
                        batch_size=3)
        assert (aggregate_rows(read_jsonl_rows(path))
                == aggregate_rows(rows))


class _KillSink(ListSink):
    """Sink that dies after ``n`` rows — a mid-grid kill stand-in."""

    def __init__(self, n: int):
        super().__init__()
        self.n = n

    def write(self, row):
        if len(self.rows) >= self.n:
            raise KeyboardInterrupt("killed mid-grid")
        super().write(row)


class TestKillResume:
    def test_mid_grid_kill_resumes_with_only_missing_jobs(self, tmp_path,
                                                          monkeypatch):
        """A grid killed mid-run resumes from the per-job cache and
        executes only the jobs whose rows were never flushed."""
        cache = JobCache(tmp_path)
        killed = _KillSink(5)
        with pytest.raises(KeyboardInterrupt):
            run_grid(GRID, cache_dir=cache, batch_size=2, sink=killed)
        survivors = len(killed.rows)
        assert 0 < survivors < len(GRID)
        runs = []
        real = engine_mod._run_job
        monkeypatch.setattr(engine_mod, "_run_job",
                            lambda t: runs.append(t) or real(t))
        stats: dict = {}
        rows = run_grid(GRID, cache_dir=cache, batch_size=2, stats=stats)
        assert len(rows) == len(GRID)
        # the kill happened on the sink, after the batch's cache puts:
        # at least every flushed row (and at most one extra batch) hit
        assert stats["job_hits"] >= survivors
        assert stats["job_hits"] + stats["job_misses"] == len(GRID)
        assert len(runs) == stats["job_misses"] < len(GRID)
        # and the resumed table equals an uninterrupted run's
        assert rows == run_grid(GRID)

    def test_killed_jsonl_sink_leaves_resumable_file(self, tmp_path):
        path = tmp_path / "rows.jsonl"
        with pytest.raises(KeyboardInterrupt):
            run_grid(GRID, cache_dir=tmp_path / "c", batch_size=2,
                     sink=_JsonlKill(path, 5))
        partial = read_jsonl_rows(path)
        assert 0 < len(partial) < len(GRID)
        # resume: fresh sink on the same path rewrites the full table
        full = run_grid(GRID, cache_dir=tmp_path / "c",
                        sink=JsonlSink(path))
        rows = read_jsonl_rows(full)
        assert len(rows) == len(GRID)
        assert rows[:len(partial)] == partial  # prefix unchanged


class _JsonlKill(JsonlSink):
    def __init__(self, path, n):
        super().__init__(path)
        self.n = n

    def write(self, row):
        if self.rows_written >= self.n:
            raise KeyboardInterrupt("killed mid-grid")
        super().write(row)


class TestParamsAxis:
    def test_params_cross_the_grid(self):
        spec = GridSpec(scenarios=("case-msr",), algorithms=("static",),
                        seeds=(0,), sizes=(16,),
                        params=({"beta": 1.0}, {"beta": 8.0}))
        rows = run_grid(spec)
        assert len(rows) == len(spec) == 2
        assert rows[0]["beta"] == 1.0 and rows[1]["beta"] == 8.0
        assert rows[0]["opt"] != rows[1]["opt"]

    def test_params_canonicalized_for_caching(self, tmp_path):
        """Key-order of a params dict must not change job identity."""
        a = GridSpec(scenarios=("case-msr",), algorithms=("static",),
                     seeds=(0,), sizes=(16,),
                     params=('{"beta": 2.0}',))
        b = GridSpec(scenarios=("case-msr",), algorithms=("static",),
                     seeds=(0,), sizes=(16,), params=({"beta": 2.0},))
        assert a.jobs() == b.jobs()
        run_grid(a, cache_dir=tmp_path)
        stats: dict = {}
        run_grid(b, cache_dir=tmp_path, stats=stats)
        assert stats["job_hits"] == 1 and stats["job_misses"] == 0

    def test_bad_params_rejected(self):
        with pytest.raises(ValueError, match="params entries"):
            GridSpec(scenarios=("diurnal",), algorithms=("lcp",),
                     params=([1, 2],))
        spec = GridSpec(scenarios=("diurnal",), algorithms=("lcp",),
                        sizes=(12,), params=({"no_such_knob": 1},))
        with pytest.raises(ValueError, match="rejected params"):
            run_grid(spec)

    def test_unparameterized_grids_unchanged(self):
        spec = GridSpec(scenarios=("diurnal",), algorithms=("lcp",),
                        sizes=(12,))
        assert spec.params == ("{}",)
        assert len(spec) == 1
        (job,) = spec.jobs()
        assert job[-1] == "{}"


GAME_GRID = GridSpec(scenarios=("lb-deterministic",),
                     algorithms=("game-lcp",), seeds=(0,), sizes=(2000,),
                     params=({"eps": 0.2}, {"eps": 0.1}))


class TestGamePipeline:
    def test_lowerbound_rows_match_direct_play(self):
        from repro.lower_bounds import (DeterministicDiscreteAdversary,
                                        play_game)
        from repro.online import LCP
        rows = run_grid(GAME_GRID)
        assert [r["eps"] for r in rows] == [0.2, 0.1]
        for row in rows:
            adv = DeterministicDiscreteAdversary(row["eps"])
            res = play_game(adv, LCP(), min(adv.horizon(), 2000))
            assert row["ratio"] == res.ratio
            assert row["game_T"] == res.instance.T
            assert row["cost"] == res.algorithm_cost
            assert row["opt"] == res.opt_cost
            assert row["limit"] == 3.0
            assert row["pipeline"] == "game"

    def test_game_determinism_under_parallel_jobs(self):
        """Satellite acceptance: game-pipeline grids are bit-identical
        between n_jobs=1 and n_jobs>1."""
        spec = GridSpec(
            scenarios=("lb-deterministic", "lb-continuous"),
            algorithms=("game-lcp", "game-algorithm-b", "game-rounded",
                        "game-threshold"),
            seeds=(0,), sizes=(1500,),
            params=({"eps": 0.2}, {"eps": 0.1}))
        serial = run_grid(spec, batch_size=3)
        parallel = run_grid(spec, n_jobs=4, batch_size=3)
        assert serial == parallel

    def test_sim_determinism_under_parallel_jobs(self, tmp_path):
        spec = GridSpec(scenarios=("sim-diurnal",),
                        algorithms=("sim-opt", "sim-lcp", "sim-static"),
                        seeds=(0, 1), sizes=(48,))
        serial = run_grid(spec, store_dir=tmp_path)
        parallel = run_grid(spec, store_dir=tmp_path, n_jobs=4)
        assert serial == parallel
        by_alg = {r["algorithm"]: r for r in serial}
        assert by_alg["sim-opt"]["ratio"] == pytest.approx(1.0)
        assert by_alg["sim-static"]["ratio"] > 1.0
        assert all("schedule_changes" in r for r in serial)

    def test_game_jobs_cache_like_any_other(self, tmp_path,
                                            monkeypatch):
        run_grid(GAME_GRID, cache_dir=tmp_path)
        runs = []
        monkeypatch.setattr(engine_mod, "_run_job",
                            lambda t: runs.append(t) or None)
        stats: dict = {}
        rows = run_grid(GAME_GRID, cache_dir=tmp_path, stats=stats)
        assert not runs and stats["job_hits"] == 2
        assert [r["eps"] for r in rows] == [0.2, 0.1]

    def test_adaptive_games_not_materialized(self, tmp_path):
        """lb-* scenarios have no dense payload: a store_dir grid must
        not try (and fail) to materialize them."""
        stats: dict = {}
        rows = run_grid(GAME_GRID, store_dir=tmp_path, stats=stats)
        assert len(rows) == 2
        assert stats["inst_materialized"] == 0

    def test_sim_games_materialize_and_reload(self, tmp_path):
        spec = GridSpec(scenarios=("sim-diurnal",),
                        algorithms=("sim-lcp",), seeds=(0,), sizes=(48,))
        stats1: dict = {}
        rows1 = run_grid(spec, store_dir=tmp_path, stats=stats1)
        assert stats1["inst_materialized"] == 1
        from repro.runner.instancestore import clear_memo
        clear_memo()
        stats2: dict = {}
        rows2 = run_grid(spec, store_dir=tmp_path, stats=stats2)
        assert stats2["inst_materialized"] == 0
        assert stats2["inst_builds"] == 0  # reloaded via mmap, not rebuilt
        assert rows1 == rows2

    def test_lowerbound_cli_via_game_pipeline(self, capsys):
        from repro.cli import main
        assert main(["lowerbound", "--kind", "deterministic",
                     "--eps", "0.2,0.1", "--max-steps", "2000"]) == 0
        out = capsys.readouterr().out
        assert "deterministic lower-bound game" in out
        assert "eps" in out and "limit" in out

    def test_mismatched_game_pairing_fails_fast(self):
        with pytest.raises(ValueError, match="needs the 'game'"):
            run_grid(GridSpec(scenarios=("diurnal",),
                              algorithms=("game-lcp",), sizes=(12,)))
        with pytest.raises(ValueError, match="only builds"):
            run_grid(GridSpec(scenarios=("lb-deterministic",),
                              algorithms=("lcp",), sizes=(12,)))


class TestSinkCLI:
    def test_sweep_sink_jsonl_with_batches(self, tmp_path, capsys):
        from repro.cli import main
        path = tmp_path / "rows.jsonl"
        rc = main(["sweep", "--scenarios", "diurnal", "--algorithms",
                   "lcp,threshold", "--seeds", "0,1", "-T", "16",
                   "--sink", "jsonl", "--sink-path", str(path),
                   "--batch-size", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "4 rows" in out and "2 batches" in out
        assert "max 2 pending" in out
        rows = read_jsonl_rows(path)
        assert len(rows) == 4
        assert {r["algorithm"] for r in rows} == {"lcp", "threshold"}

    def test_bench_sink_sqlite(self, tmp_path, capsys):
        from repro.cli import main
        db = tmp_path / "rows.db"
        rc = main(["bench", "--grid", "smoke", "--sink", "sqlite",
                   "--sink-path", str(db), "--batch-size", "4"])
        assert rc == 0
        assert "jobs/s" in capsys.readouterr().out
        assert len(read_sqlite_rows(db)) == 9


class TestSweepStreaming:
    def test_sweep_sink_and_batches(self, tmp_path):
        from repro.analysis import sweep
        from tests.test_runner import _measure
        grid = {"T": [2, 3], "m": [4, 5, 6]}
        rows = sweep(_measure, grid)
        path = sweep(_measure, grid, sink=JsonlSink(tmp_path / "s.jsonl"),
                     batch_size=2)
        assert read_jsonl_rows(path) == rows

    def test_sweep_batched_cache_counts(self, tmp_path):
        from repro.analysis import sweep
        from tests.test_runner import _measure
        grid = {"T": [2, 3], "m": [4, 5]}
        stats1, stats2 = {}, {}
        sweep(_measure, grid, cache_dir=tmp_path, stats=stats1,
              batch_size=3)
        sweep(_measure, grid, cache_dir=tmp_path, stats=stats2,
              batch_size=1)
        assert stats1 == {"hits": 0, "misses": 4}
        assert stats2 == {"hits": 4, "misses": 0}


def test_jsonify_round_trip_through_sinks(tmp_path):
    """Numpy payloads written by a sink read back as plain JSON types."""
    sink = JsonlSink(tmp_path / "x.jsonl")
    sink.open()
    sink.write({"a": np.float64(1.5), "b": np.arange(3)})
    sink.close()
    assert read_jsonl_rows(sink.result()) == [{"a": 1.5, "b": [0, 1, 2]}]
    db = SqliteSink(tmp_path / "x.db")
    db.open()
    db.write({"a": np.int64(7)})
    db.close()
    assert read_sqlite_rows(db.result()) == [{"a": 7}]


def test_sqlite_sink_shares_wal_machinery(tmp_path):
    sink = SqliteSink(tmp_path / "rows.db")
    sink.open()
    sink.write({"x": 1})
    import sqlite3
    mode = sqlite3.connect(sink.path).execute(
        "PRAGMA journal_mode").fetchone()[0]
    sink.close()
    assert mode.lower() == "wal"


def test_engine_version_bumped_for_job_shape_change():
    assert engine_mod.ENGINE_VERSION >= 3
    assert engine_mod._JOB_FIELDS[-1] == "params"
    blob = json.dumps(GRID.to_dict())
    assert "params" in blob
