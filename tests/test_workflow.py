"""End-to-end capacity-planning workflow through the public surfaces.

Simulates the operator's path: generate a trace, persist the instance,
solve it offline, persist the schedule, replay it online and in the
simulator, and produce the analysis — exactly the loop a downstream
user of the library would run.
"""

import numpy as np
import pytest

from repro.analysis import (competitive_ratio, format_table, optimal_cost,
                            savings_vs_static, schedule_chart)
from repro.cli import main
from repro.io import load_instance, load_schedule, save_instance, save_schedule
from repro.offline import solve_binary_search, solve_restricted
from repro.online import LCP
from repro.simulator import bridge_instance, poisson_job_trace, simulated_cost
from repro.workloads import (capacity_for, diurnal_loads, instance_from_loads,
                             restricted_from_loads)


class TestPlannerWorkflow:
    def test_full_loop(self, tmp_path):
        rng = np.random.default_rng(300)
        loads = diurnal_loads(96, peak=14.0, rng=rng)
        m = capacity_for(loads)
        inst = instance_from_loads(loads, m=m, beta=5.0, delay_weight=8.0)

        # Persist and reload.
        save_instance(tmp_path / "plan.npz", inst)
        inst2 = load_instance(tmp_path / "plan.npz")
        np.testing.assert_array_equal(inst2.F, inst.F)

        # Solve offline, persist the schedule, reload, verify cost.
        res = solve_binary_search(inst2)
        save_schedule(tmp_path / "plan.csv", res.schedule)
        sched = load_schedule(tmp_path / "plan.csv")
        from repro.core.schedule import cost
        assert cost(inst2, sched) == pytest.approx(res.cost)

        # Online operation stays within guarantee; savings are real.
        ratio = competitive_ratio(inst2, LCP())
        assert 1.0 - 1e-9 <= ratio <= 3.0 + 1e-9
        out = savings_vs_static(inst2, res.schedule)
        assert out["saving"] >= 0.0

        # Render the plan (no exceptions, aligned output).
        chart = schedule_chart(loads, sched, every=4)
        assert len(chart.splitlines()) == 3

    def test_cli_matches_library(self, tmp_path, capsys):
        """The CLI's solve output equals the library path on the same
        seeded workload."""
        sched_path = tmp_path / "cli.csv"
        inst_path = tmp_path / "cli.npz"
        rc = main(["solve", "--workload", "diurnal", "-T", "48",
                   "--peak", "10", "--beta", "4", "--seed", "9",
                   "--save-schedule", str(sched_path),
                   "--save-instance", str(inst_path)])
        assert rc == 0
        capsys.readouterr()
        inst = load_instance(inst_path)
        sched = load_schedule(sched_path)
        assert optimal_cost(inst) == pytest.approx(
            solve_binary_search(inst).cost)
        from repro.core.schedule import cost
        assert cost(inst, sched) == pytest.approx(optimal_cost(inst))

    def test_restricted_and_simulator_paths_consistent(self):
        """The three modeling routes (general, restricted, simulator
        bridge) produce schedules in the same capacity ballpark for the
        same demand."""
        rng = np.random.default_rng(301)
        loads = diurnal_loads(72, peak=8.0, rng=rng)
        m = 12

        general = instance_from_loads(loads, m=m, beta=3.0)
        x_gen = solve_binary_search(general).schedule

        ri = restricted_from_loads(loads, m=m, beta=3.0)
        x_res = solve_restricted(ri).schedule

        trace = poisson_job_trace(loads, rng=rng)
        bridged = bridge_instance(trace, m, beta=3.0, latency_weight=0.5)
        x_sim = solve_binary_search(bridged).schedule

        peaks = [x.max() for x in (x_gen, x_res, x_sim)]
        assert max(peaks) - min(peaks) <= m * 0.75
        # And the simulator agrees the bridged schedule is the best of
        # the three when measured by simulated cost.
        costs = {name: simulated_cost(x, trace, m)
                 for name, x in [("general", x_gen), ("restricted", x_res),
                                 ("bridged", x_sim)]}
        assert costs["bridged"] <= min(costs.values()) + 1e-9

    def test_report_rows_render(self):
        rows = [{"algorithm": "lcp", "ratio": 1.07},
                {"algorithm": "threshold", "ratio": 1.03}]
        text = format_table(rows, title="ops summary")
        assert "ops summary" in text and "lcp" in text
