"""Multi-host lease-queue execution: N workers drain one grid.

The first new consumer of the shared pipelined executor
(:mod:`repro.runner.executor`): a SQLite *lease queue* splits a
:class:`~repro.runner.engine.GridSpec` into contiguous job ranges that
worker processes — on one host or many, sharing the queue directory
over a common filesystem — lease, execute and complete independently:

* :class:`LeaseQueue` — the WAL-mode queue database
  (``<root>/queue.db``, opened through the job cache's
  :func:`~repro.runner.jobcache.connect_wal`): one ``grids`` row per
  enqueued spec (idempotent by content hash) and one ``leases`` row
  per contiguous job range.  Claiming is one ``BEGIN IMMEDIATE``
  transaction, so two workers can never lease the same range;
  heartbeats push a lease's deadline forward, and
  :meth:`~LeaseQueue.reclaim_expired` flips timed-out leases back to
  pending — a SIGKILL'd worker loses only its leased range.
* :func:`work` — the worker loop: reclaim expired leases, claim a
  range, replay it through :func:`~repro.runner.engine.run_grid` with
  ``job_slice=(start, stop)``, and mark it done.  Each worker appends
  ``{"seq": …, "grid": …, "row": …}`` envelopes to its own JSONL
  results file (heartbeating on every batch flush), and the shared
  per-job cache dedupes ranges that were partially executed before a
  crash — a re-run lease replays cached rows instead of recomputing.
* :func:`merge_results` — collects every worker's envelopes, dedupes
  by sequence number (first wins; duplicates are checked for
  equality), asserts the grid is covered exactly, and writes the rows
  — in grid job order — to an ordinary result sink.

Determinism invariant: because every job is seeded from its
coordinates alone and job slicing never changes a row
(``docs/ARCHITECTURE.md``), the merged result set is **bit-identical**
to a single-process ``run_grid`` of the same spec — however many
workers drained the queue, in whatever order, including after crashes
and reclaims.
"""

from __future__ import annotations

import dataclasses
import json
import os
import pathlib
import re
import socket
import time

from . import faults
from .engine import ENGINE_VERSION, GridSpec, run_grid
from .executor import EngineConfig, RunStats
from .jobcache import connect_wal, with_busy_retry
from .sinks import JsonlSink, ListSink, MergeError

__all__ = [
    "DEFAULT_LEASE_JOBS",
    "DEFAULT_TTL",
    "Lease",
    "LeaseLost",
    "LeaseQueue",
    "MergeError",
    "failed_jobs",
    "grid_status",
    "merge_results",
    "retry_failed",
    "work",
]

#: default contiguous jobs per lease (small enough to rebalance after
#: a crash, large enough to amortize the claim round-trip)
DEFAULT_LEASE_JOBS = 8

#: default lease time-to-live in seconds; heartbeats (one per flushed
#: batch) must arrive faster than this, so pick a TTL comfortably above
#: one batch's wall time
DEFAULT_TTL = 60.0

#: default idle poll interval while waiting for reclaimable leases
DEFAULT_POLL = 0.2


class LeaseLost(RuntimeError):
    """The worker's lease expired and was reclaimed by someone else.

    Raised by :meth:`LeaseQueue.heartbeat` / :meth:`LeaseQueue.complete`
    when the lease row no longer belongs to the caller; :func:`work`
    catches it, abandons the range (another worker owns it now — the
    job cache keeps whatever was already computed) and claims afresh.
    """


@dataclasses.dataclass(frozen=True)
class Lease:
    """One claimed contiguous job range ``[start, stop)`` of a grid."""

    grid_id: str
    start: int
    stop: int
    worker: str
    deadline: float


def default_worker_id() -> str:
    """A worker identity unique across hosts and processes."""
    return f"{socket.gethostname()}-{os.getpid()}"


def _safe_name(worker: str) -> str:
    """Filesystem-safe form of a worker id (results file name)."""
    return re.sub(r"[^A-Za-z0-9._-]+", "_", worker) or "worker"


def _contiguous_runs(indexes, cap: int) -> list[tuple[int, int]]:
    """Group sorted job ``indexes`` into ``[start, stop)`` runs of
    consecutive indexes, each at most ``cap`` jobs long (the subset
    form of the enqueue splitter)."""
    runs: list[tuple[int, int]] = []
    start = prev = None
    for i in indexes:
        if start is not None and i == prev + 1 and i - start < cap:
            prev = i
            continue
        if start is not None:
            runs.append((start, prev + 1))
        start = prev = i
    if start is not None:
        runs.append((start, prev + 1))
    return runs


class LeaseQueue:
    """A shared SQLite work queue of contiguous grid-job leases.

    ``root`` is a directory (shared between workers — local disk for
    multi-process runs, a network filesystem for multi-host): the
    queue database lives at ``<root>/queue.db`` and per-worker result
    envelopes under ``<root>/results/``.  All state transitions are
    single SQLite statements or ``BEGIN IMMEDIATE`` transactions on a
    WAL-mode connection, so any number of workers may share the queue.

    ``clock`` is injectable for tests (defaults to :func:`time.time`);
    deadlines are absolute clock values.
    """

    DB_NAME = "queue.db"

    def __init__(self, root, clock=time.time):
        """Open (creating if needed) the queue at directory ``root``."""
        self.root = pathlib.Path(root)
        self._clock = clock
        self._conn = connect_wal(self.root / self.DB_NAME)
        self._conn.execute(
            "CREATE TABLE IF NOT EXISTS grids ("
            " grid_id TEXT PRIMARY KEY,"
            " spec TEXT NOT NULL,"
            " total INTEGER NOT NULL,"
            " lease_jobs INTEGER NOT NULL,"
            " created REAL NOT NULL)")
        self._conn.execute(
            "CREATE TABLE IF NOT EXISTS leases ("
            " grid_id TEXT NOT NULL,"
            " start INTEGER NOT NULL,"
            " stop INTEGER NOT NULL,"
            " state TEXT NOT NULL DEFAULT 'pending',"
            " worker TEXT,"
            " deadline REAL,"
            " claims INTEGER NOT NULL DEFAULT 0,"
            " reclaims INTEGER NOT NULL DEFAULT 0,"
            " PRIMARY KEY (grid_id, start))")

    # -- plumbing ------------------------------------------------------

    def close(self) -> None:
        """Close the queue's database connection (idempotent)."""
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def _txn(self):
        """Start an immediate (write-locking) transaction."""
        self._conn.execute("BEGIN IMMEDIATE")
        return self._conn

    @property
    def results_dir(self) -> pathlib.Path:
        """Directory the per-worker result envelope files live in."""
        return self.root / "results"

    def worker_path(self, worker: str) -> pathlib.Path:
        """The JSONL envelope file a worker appends its rows to."""
        return self.results_dir / f"{_safe_name(worker)}.jsonl"

    # -- producing work ------------------------------------------------

    def enqueue(self, spec: GridSpec, *,
                lease_jobs: int = DEFAULT_LEASE_JOBS,
                jobs=None) -> str:
        """Split ``spec`` into contiguous leases; return its grid id.

        Idempotent: enqueueing a spec that is already queued (same
        content hash) changes nothing and returns the existing id.

        ``jobs`` restricts the leases to a subset of global job
        indexes (the grid service passes the cache-*miss* set):
        the indexes are grouped into contiguous runs of at most
        ``lease_jobs`` and only those ranges become leases — the
        grid's ``total`` still counts every job, so the merge's
        coverage check expects the caller to supply the skipped rows
        (cache-hit envelopes).  An empty subset enqueues the grid
        with no leases at all: immediately finished.
        """
        if lease_jobs < 1:
            raise ValueError("lease_jobs must be positive")
        grid_id = spec.cache_key()
        total = len(spec)
        if jobs is None:
            ranges = [(start, min(start + lease_jobs, total))
                      for start in range(0, total, lease_jobs)]
        else:
            indexes = sorted(set(int(j) for j in jobs))
            if indexes and not (0 <= indexes[0]
                                and indexes[-1] < total):
                raise ValueError(f"job indexes out of range for a "
                                 f"{total}-job grid")
            ranges = _contiguous_runs(indexes, lease_jobs)

        def _attempt():
            conn = self._txn()
            try:
                row = conn.execute(
                    "SELECT total FROM grids WHERE grid_id = ?",
                    (grid_id,)).fetchone()
                if row is None:
                    conn.execute(
                        "INSERT INTO grids (grid_id, spec, total,"
                        " lease_jobs, created) VALUES (?, ?, ?, ?, ?)",
                        (grid_id,
                         json.dumps(spec.to_dict(), sort_keys=True),
                         total, lease_jobs, self._clock()))
                    conn.executemany(
                        "INSERT INTO leases (grid_id, start, stop)"
                        " VALUES (?, ?, ?)",
                        [(grid_id, start, stop)
                         for start, stop in ranges])
                conn.execute("COMMIT")
            except BaseException:
                conn.execute("ROLLBACK")
                raise

        with_busy_retry(_attempt)
        return grid_id

    # -- inspecting ----------------------------------------------------

    def grids(self) -> list[str]:
        """Queued grid ids, oldest first."""
        rows = self._conn.execute(
            "SELECT grid_id FROM grids ORDER BY created, grid_id")
        return [r[0] for r in rows.fetchall()]

    def _grid_row(self, grid_id: str):
        row = self._conn.execute(
            "SELECT spec, total FROM grids WHERE grid_id = ?",
            (grid_id,)).fetchone()
        if row is None:
            raise KeyError(f"unknown grid {grid_id!r}")
        return row

    def spec_dict(self, grid_id: str) -> dict:
        """The enqueued spec's :meth:`GridSpec.to_dict` form."""
        return json.loads(self._grid_row(grid_id)[0])

    def spec(self, grid_id: str) -> GridSpec:
        """Rebuild the enqueued :class:`GridSpec`.

        Refuses specs enqueued under a different ``ENGINE_VERSION``:
        mixed-version workers would write rows the merge could not
        reconcile bit-identically.
        """
        d = self.spec_dict(grid_id)
        version = d.get("engine_version")
        if version is not None and version != ENGINE_VERSION:
            raise ValueError(
                f"grid {grid_id} was enqueued by engine version "
                f"{version}; this engine is {ENGINE_VERSION} — "
                f"re-enqueue the grid")
        return GridSpec.from_dict(d)

    def total(self, grid_id: str) -> int:
        """Number of jobs the enqueued grid expands to."""
        return int(self._grid_row(grid_id)[1])

    def counts(self, grid_id: str | None = None) -> dict:
        """Lease counts by state (one grid, or the whole queue)."""
        sql = "SELECT state, COUNT(*) FROM leases"
        args: tuple = ()
        if grid_id is not None:
            sql += " WHERE grid_id = ?"
            args = (grid_id,)
        out = {"pending": 0, "leased": 0, "done": 0}
        for state, n in self._conn.execute(
                sql + " GROUP BY state", args).fetchall():
            out[state] = n
        return out

    def finished(self, grid_id: str | None = None) -> bool:
        """True when no lease (of the grid / the queue) is outstanding."""
        counts = self.counts(grid_id)
        return counts["pending"] == 0 and counts["leased"] == 0

    def outstanding_jobs(self) -> int:
        """Total jobs inside not-yet-done leases across the whole
        queue — the grid service's admission-control pressure gauge."""
        row = self._conn.execute(
            "SELECT COALESCE(SUM(stop - start), 0) FROM leases"
            " WHERE state != 'done'").fetchone()
        return int(row[0])

    # -- the lease lifecycle -------------------------------------------

    def claim(self, worker: str, *, ttl: float = DEFAULT_TTL,
              grid_id: str | None = None) -> Lease | None:
        """Atomically lease the first pending range, or return ``None``.

        The claim is one ``BEGIN IMMEDIATE`` transaction: concurrent
        workers serialize on the queue's write lock, so a range is
        leased exactly once until it expires or completes.  Transient
        SQLITE_BUSY contention — and the injected ``queue_claim``
        fault site (token: the worker id) — heal inside the shared
        busy-retry budget.
        """

        def _attempt():
            faults.fire("queue_claim", worker)
            now = self._clock()
            conn = self._txn()
            try:
                sql = ("SELECT grid_id, start, stop FROM leases"
                       " WHERE state = 'pending'")
                args: tuple = ()
                if grid_id is not None:
                    sql += " AND grid_id = ?"
                    args = (grid_id,)
                row = conn.execute(
                    sql + " ORDER BY grid_id, start LIMIT 1",
                    args).fetchone()
                if row is None:
                    conn.execute("COMMIT")
                    return None
                gid, start, stop = row
                deadline = now + ttl
                conn.execute(
                    "UPDATE leases SET state = 'leased', worker = ?,"
                    " deadline = ?, claims = claims + 1"
                    " WHERE grid_id = ? AND start = ?",
                    (worker, deadline, gid, start))
                conn.execute("COMMIT")
            except BaseException:
                conn.execute("ROLLBACK")
                raise
            return Lease(gid, start, stop, worker, deadline)

        return with_busy_retry(_attempt)

    def heartbeat(self, lease: Lease, ttl: float = DEFAULT_TTL) -> None:
        """Push the lease's deadline ``ttl`` seconds into the future.

        Raises :class:`LeaseLost` when the lease no longer belongs to
        the worker (it expired and was reclaimed, or completed by a
        reclaiming worker).
        """
        cur = self._conn.execute(
            "UPDATE leases SET deadline = ? WHERE grid_id = ?"
            " AND start = ? AND worker = ? AND state = 'leased'",
            (self._clock() + ttl, lease.grid_id, lease.start,
             lease.worker))
        if cur.rowcount == 0:
            raise LeaseLost(f"lease {lease.grid_id}[{lease.start}:"
                            f"{lease.stop}) lost by {lease.worker}")

    def complete(self, lease: Lease) -> None:
        """Mark the lease done; raises :class:`LeaseLost` if it was
        reclaimed first (the range's rows still merge — the job cache
        and seq dedupe make re-runs harmless)."""
        cur = self._conn.execute(
            "UPDATE leases SET state = 'done', deadline = NULL"
            " WHERE grid_id = ? AND start = ? AND worker = ?"
            " AND state = 'leased'",
            (lease.grid_id, lease.start, lease.worker))
        if cur.rowcount == 0:
            raise LeaseLost(f"lease {lease.grid_id}[{lease.start}:"
                            f"{lease.stop}) lost by {lease.worker}")

    def reclaim_expired(self, grid_id: str | None = None) -> int:
        """Flip expired leases back to pending; return how many.

        One atomic ``UPDATE``: a lease whose deadline passed (its
        worker crashed, hung, or lost its heartbeat) becomes claimable
        again, with its ``reclaims`` audit counter bumped.
        """
        sql = ("UPDATE leases SET state = 'pending', worker = NULL,"
               " deadline = NULL, reclaims = reclaims + 1"
               " WHERE state = 'leased' AND deadline < ?")
        args: list = [self._clock()]
        if grid_id is not None:
            sql += " AND grid_id = ?"
            args.append(grid_id)
        return with_busy_retry(
            lambda: self._conn.execute(sql, args).rowcount)

    def stale(self, grid_id: str | None = None) -> int:
        """Leased ranges whose heartbeat deadline has already passed —
        workers presumed dead but not yet reclaimed (``repro work
        status`` surfaces this; :meth:`reclaim_expired` clears it)."""
        sql = ("SELECT COUNT(*) FROM leases WHERE state = 'leased'"
               " AND deadline < ?")
        args: list = [self._clock()]
        if grid_id is not None:
            sql += " AND grid_id = ?"
            args.append(grid_id)
        return int(self._conn.execute(sql, args).fetchone()[0])

    def reset_covering(self, grid_id: str, seqs) -> int:
        """Flip the *done* leases covering the job indexes ``seqs``
        back to pending (the ``repro work retry-failed`` seam); return
        how many leases were re-opened.

        Lease granularity means sibling jobs in a re-opened range run
        again too — harmlessly: their rows come straight from the job
        cache and the merge dedupes the duplicate envelopes.
        """
        seqs = sorted(set(seqs))
        if not seqs:
            return 0
        conn = self._txn()
        try:
            starts = {
                row[0] for seq in seqs
                for row in conn.execute(
                    "SELECT start FROM leases WHERE grid_id = ?"
                    " AND start <= ? AND stop > ?",
                    (grid_id, seq, seq)).fetchall()}
            cur = conn.executemany(
                "UPDATE leases SET state = 'pending', worker = NULL,"
                " deadline = NULL WHERE grid_id = ? AND start = ?"
                " AND state = 'done'",
                [(grid_id, start) for start in sorted(starts)])
            reopened = cur.rowcount
            conn.execute("COMMIT")
        except BaseException:
            conn.execute("ROLLBACK")
            raise
        return reopened


class _LeaseSink(JsonlSink):
    """Per-worker results sink: envelope rows, heartbeat per flush.

    Each row is wrapped as ``{"seq": global_job_index, "grid": id,
    "row": row}`` and appended to the worker's JSONL file (several
    leases share one file).  Every batch flush first renews the
    worker's lease — so a worker that lost its lease stops writing at
    the next flush — and fsyncs afterwards, so ``complete`` is only
    reported for durably written rows.
    """

    def __init__(self, queue: LeaseQueue, lease: Lease, ttl: float):
        """Append to the lease's worker file under the queue root."""
        super().__init__(queue.worker_path(lease.worker), append=True)
        self.queue = queue
        self.lease = lease
        self.ttl = ttl

    def write(self, row: dict) -> None:
        """Wrap one row in its ``seq``/``grid`` envelope and append."""
        seq = self.lease.start + self.rows_written
        super().write({"seq": seq, "grid": self.lease.grid_id,
                       "row": row})

    def write_many(self, rows) -> None:
        """Heartbeat, write the batch's envelopes, then fsync."""
        self.queue.heartbeat(self.lease, self.ttl)
        super().write_many(rows)
        if self._fh is not None:
            self._fh.flush()
            os.fsync(self._fh.fileno())


def work(root, *, worker: str | None = None,
         config: EngineConfig | None = None, ttl: float = DEFAULT_TTL,
         poll: float = DEFAULT_POLL, grid_id: str | None = None,
         stats: RunStats | None = None,
         max_leases: int | None = None) -> RunStats:
    """Drain a lease queue: claim ranges and run them until finished.

    ``root`` is the queue directory (or an open :class:`LeaseQueue`).
    The loop: reclaim expired leases, claim the next pending range,
    replay it through :func:`~repro.runner.engine.run_grid` with
    ``job_slice=(start, stop)`` under ``config`` (sharing the config's
    job cache with every other worker dedupes partially executed
    ranges), append the rows to this worker's envelope file, and mark
    the lease done.  When nothing is claimable the worker sleeps
    ``poll`` seconds — another worker may still crash and its lease
    become reclaimable — and exits once every lease is done (or after
    ``max_leases``, for tests and bounded drains).

    A lost lease (:class:`LeaseLost` — e.g. the range outlived ``ttl``
    and was reclaimed) abandons the range and keeps claiming; pick a
    ``ttl`` comfortably above one batch's wall time, since heartbeats
    ride the per-batch flush.  Returns the accumulated
    :class:`~repro.runner.executor.RunStats` (pass ``stats`` to
    accumulate across calls): ``leases_claimed`` / ``leases_completed``
    / ``leases_reclaimed`` / ``leases_lost`` plus the ordinary engine
    counters summed over every lease this worker ran.
    """
    queue = root if isinstance(root, LeaseQueue) else LeaseQueue(root)
    config = EngineConfig() if config is None else config
    worker = default_worker_id() if worker is None else worker
    run_stats = stats if isinstance(stats, RunStats) else RunStats()
    claimed = 0
    while max_leases is None or claimed < max_leases:
        run_stats.leases_reclaimed += queue.reclaim_expired(grid_id)
        lease = queue.claim(worker, ttl=ttl, grid_id=grid_id)
        if lease is None:
            if queue.finished(grid_id):
                break
            time.sleep(poll)
            continue
        claimed += 1
        run_stats.leases_claimed += 1
        spec = queue.spec(lease.grid_id)
        sink = _LeaseSink(queue, lease, ttl)
        try:
            run_grid(spec,
                     dataclasses.replace(config, sink=sink),
                     stats=run_stats,
                     job_slice=(lease.start, lease.stop))
            queue.complete(lease)
            run_stats.leases_completed += 1
        except LeaseLost:
            run_stats.leases_lost += 1
    return run_stats


def _iter_envelopes(path: pathlib.Path):
    """Yield well-formed result envelopes from one worker file.

    A SIGKILL mid-write leaves at most one torn **final** line, which
    is tolerated (the merge's coverage check catches anything that
    actually went missing), and well-formed JSON that is not a result
    envelope is skipped.  Unparseable lines in the *middle* of the file
    are a different beast — appends are sequential, so mid-file damage
    means the log itself is corrupt — and raise :class:`MergeError`
    naming the worker file and line rather than silently dropping rows.
    """
    try:
        fh = path.open()
    except OSError:
        return
    with fh:
        torn: int | None = None
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            if torn is not None:
                raise MergeError(
                    f"worker log {path.name}: corrupt JSON on line "
                    f"{torn} (not a torn tail — line {lineno} follows "
                    f"it); refusing to merge a damaged result stream")
            try:
                env = json.loads(line)
            except ValueError:
                torn = lineno
                continue
            if (isinstance(env, dict) and "row" in env
                    and isinstance(env.get("seq"), int)):
                yield env


def _is_failed(row) -> bool:
    """Whether a merged row is a quarantine (``status="failed"``) row."""
    return isinstance(row, dict) and row.get("status") == "failed"


def _collect_rows(queue: LeaseQueue, grid_id: str) -> dict[int, dict]:
    """First-wins merge of every worker's envelopes for one grid.

    Duplicates (re-run ranges) must agree — determinism means an
    ok/ok mismatch is a real bug — with one deliberate asymmetry: a
    successful row always replaces a quarantined one for the same job
    (a retried worker healed it; the stale failure envelope stays in
    the old worker log), and two quarantine rows never conflict (their
    attempt counts and messages legitimately differ across workers).
    """
    rows: dict[int, dict] = {}
    for path in sorted(queue.results_dir.glob("*.jsonl")):
        for env in _iter_envelopes(path):
            if env.get("grid") != grid_id:
                continue
            seq, row = env["seq"], env["row"]
            prev = rows.get(seq)
            if prev is None:
                rows[seq] = row
            elif prev == row:
                continue
            elif _is_failed(prev) and not _is_failed(row):
                rows[seq] = row       # a retry healed the job
            elif _is_failed(row) or _is_failed(prev):
                continue              # keep the healthier / first row
            else:
                raise MergeError(
                    f"conflicting results for job {seq} of grid "
                    f"{grid_id}: determinism violated (were the "
                    f"workers running different code versions?)")
    return rows


def _resolve_grid(queue: LeaseQueue, grid_id: str | None) -> str:
    """Default ``grid_id`` to the queue's only grid, or fail clearly."""
    if grid_id is not None:
        return grid_id
    grids = queue.grids()
    if len(grids) != 1:
        raise ValueError(f"queue holds {len(grids)} grids; "
                         f"pass grid_id to pick one")
    return grids[0]


def merge_results(root, grid_id: str | None = None, sink=None):
    """Merge every worker's envelopes into one in-order result set.

    Reads all ``<root>/results/*.jsonl`` files, keeps the first
    envelope per sequence number (re-run ranges produce duplicates;
    they are checked to be identical — determinism means any mismatch
    is a real bug, not a race), verifies the grid is covered *exactly*
    (every job present, nothing out of range), and writes the rows in
    grid job order to ``sink`` (default: collect and return the
    ``list[dict]``).  The result is bit-identical to a single-process
    ``run_grid`` of the same spec.

    ``grid_id`` may be omitted when the queue holds exactly one grid.
    """
    queue = root if isinstance(root, LeaseQueue) else LeaseQueue(root)
    grid_id = _resolve_grid(queue, grid_id)
    if not queue.finished(grid_id):
        counts = queue.counts(grid_id)
        raise ValueError(
            f"grid {grid_id} is not drained yet ({counts['pending']} "
            f"pending, {counts['leased']} leased leases) — run more "
            f"workers (repro work run) before merging")
    total = queue.total(grid_id)
    rows = _collect_rows(queue, grid_id)
    missing = [seq for seq in range(total) if seq not in rows]
    stray = sorted(seq for seq in rows if not 0 <= seq < total)
    if missing or stray:
        raise ValueError(
            f"grid {grid_id} results incomplete: {len(missing)} of "
            f"{total} jobs missing"
            + (f" (first missing: {missing[:5]})" if missing else "")
            + (f", {len(stray)} out of range" if stray else ""))
    sink = ListSink() if sink is None else sink
    sink.open(queue.spec_dict(grid_id))
    try:
        sink.write_many([rows[seq] for seq in range(total)])
    finally:
        sink.close()
    return sink.result()


def failed_jobs(root, grid_id: str | None = None) -> dict[int, dict]:
    """The quarantined jobs of a grid after the prefer-ok merge:
    ``{seq: quarantine_row}`` for every job whose best merged row is
    still ``status="failed"`` (a job healed by a retried lease does not
    appear).  Works on partially drained queues — ``repro work
    status`` calls this while workers are still running."""
    queue = root if isinstance(root, LeaseQueue) else LeaseQueue(root)
    grid_id = _resolve_grid(queue, grid_id)
    return {seq: row
            for seq, row in _collect_rows(queue, grid_id).items()
            if _is_failed(row)}


def retry_failed(root, grid_id: str | None = None) -> tuple[int, int]:
    """Re-enqueue only the quarantined jobs of a drained grid.

    Finds every job whose merged result is still ``status="failed"``
    and flips the done leases covering them back to pending — the
    ``repro work retry-failed`` subcommand.  Returns
    ``(failed_jobs, reopened_leases)``.  The next ``work`` loop re-runs
    those ranges: healthy sibling jobs replay from the job cache,
    quarantined ones execute for real, and the merge's prefer-ok rule
    lets fresh successes supersede the stale failure envelopes.
    """
    queue = root if isinstance(root, LeaseQueue) else LeaseQueue(root)
    grid_id = _resolve_grid(queue, grid_id)
    failed = failed_jobs(queue, grid_id)
    if not failed:
        return 0, 0
    return len(failed), queue.reset_covering(grid_id, failed)


def grid_status(root, grid_id: str | None = None, *,
                include_rows: bool = True) -> dict:
    """One grid's machine-readable status — the single source of truth
    behind both ``repro work status --json`` and the grid service's
    ``GET /grids/<id>``.

    The payload::

        {"grid": id, "total": n_jobs,
         "state": "pending" | "done" | "degraded",
         "leases": {"pending": p, "leased": l, "done": d},
         "stale": stale_leases,
         "jobs": {"done": ok, "quarantined": failed,
                  "pending": not_yet_merged},
         "rows": [...]}          # only once every lease is drained

    ``state`` semantics: ``done`` means every lease drained and every
    job produced a healthy row; ``degraded`` means the grid cannot
    currently make progress toward ``done`` on its own — quarantined
    jobs remain after the drain, or leased ranges have outlived their
    heartbeat deadline (the worker fleet is presumed dead) — so the
    caller sees the unfinished remainder instead of waiting forever;
    ``pending`` means live workers are (or may still start) draining.
    Merged ``rows`` (in grid job order, quarantine rows included) are
    attached only when the drain is complete and ``include_rows`` is
    true.
    """
    queue = root if isinstance(root, LeaseQueue) else LeaseQueue(root)
    grid_id = _resolve_grid(queue, grid_id)
    total = queue.total(grid_id)
    counts = queue.counts(grid_id)
    stale = queue.stale(grid_id)
    merged = _collect_rows(queue, grid_id)
    quarantined = sorted(seq for seq, row in merged.items()
                         if _is_failed(row))
    drained = counts["pending"] == 0 and counts["leased"] == 0
    covered = len(merged) == total
    if drained:
        state = "done" if covered and not quarantined else "degraded"
    else:
        state = "degraded" if stale else "pending"
    status = {
        "grid": grid_id,
        "total": total,
        "state": state,
        "leases": counts,
        "stale": stale,
        "jobs": {"done": len(merged) - len(quarantined),
                 "quarantined": len(quarantined),
                 "pending": total - len(merged)},
        "quarantined_seqs": quarantined,
    }
    if drained and covered and include_rows:
        status["rows"] = merge_results(queue, grid_id)
    return status
