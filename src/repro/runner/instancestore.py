"""Shared materialized-instance store — phase 0 of the engine.

Building a scenario instance means evaluating ``O(T m)`` Python-level
cost functions; before this layer every engine worker re-paid that for
every job (phase 1 *and* phase 2), so a grid with ``A`` algorithms
tabulated the same ``(T, m+1)`` cost matrix ``A + 1`` times.  The store
materializes each distinct ``(scenario, pipeline, T, inst_seed)``
instance exactly once and persists its dense payload as content-addressed
``.npy`` files:

* ``general`` — the ``F`` cost matrix (+ ``beta``);
* ``restricted`` — the load trace and the masked feasible-cost table of
  :func:`repro.offline.restricted.restricted_cost_matrix` (+ ``m``,
  ``beta``);
* ``hetero`` — the ``(T, m1+1, m2+1)`` cost tensor (+ both betas).

Workers reopen payloads with ``np.load(..., mmap_mode="r")``, so phase-1
and phase-2 jobs (and every process of the persistent pool) share
read-only pages instead of re-tabulating — rebuild cost is paid once per
store, not once per job.

Independently of any store, :func:`get_instance` keeps a small
per-process memo so one process never builds (or mmap-loads) the same
instance twice, and counts actual scenario builds in a per-process stats
dict — the ``inst_builds`` counter :func:`repro.runner.run_grid` reports,
which is how tests *prove* the exactly-once property.

Payloads reconstruct bit-identically (``np.save`` round-trips float64
exactly), so rows computed through the store match the rebuild path and
``n_jobs=1`` vs ``n_jobs=N`` stays bit-identical.
"""

from __future__ import annotations

import collections
import dataclasses
import json
import os
import pathlib
import shutil

import numpy as np

from . import faults
from .jobcache import content_key

__all__ = [
    "InstanceStore",
    "StoredRestrictedInstance",
    "get_instance",
    "build_stats",
    "clear_memo",
    "set_memo_size",
    "split_coords",
    "store_key",
]

#: bump when the payload layout changes, to invalidate stale stores
STORE_VERSION = 2

#: default number of instances the per-process memo keeps alive
_DEFAULT_MEMO_SIZE = 8

#: default bound on the memo's *resident* bytes (mmap-backed payloads
#: count as zero — their pages are file-backed and OS-evictable); keeps
#: persistent pool workers from pinning hundreds of MB of built
#: instances after a large-T grid finishes
_DEFAULT_MEMO_BYTES = 128 * 1024 * 1024


def split_coords(coords: tuple) -> tuple:
    """Normalize instance coordinates to their five components.

    Coordinates are ``(scenario, pipeline, T, inst_seed[, params])``
    where ``params`` is the canonical-JSON string of the job's scenario
    parameters; the historical four-field form means no parameters.
    """
    scenario, pipeline, T, inst_seed, *rest = coords
    params = rest[0] if rest else "{}"
    return scenario, pipeline, int(T), int(inst_seed), params


def store_key(coords: tuple) -> str:
    """Content-addressed key of one instance payload."""
    scenario, pipeline, T, inst_seed, params = split_coords(coords)
    return content_key({"kind": "instance-payload",
                        "store_version": STORE_VERSION,
                        "scenario": scenario, "pipeline": pipeline,
                        "T": T, "inst_seed": inst_seed, "params": params})


@dataclasses.dataclass(frozen=True)
class StoredRestrictedInstance:
    """Restricted-model view reconstructed from the store.

    The precomputed masked cost table stands in for the per-server cost
    callable (which cannot be serialized);
    :func:`~repro.offline.restricted.solve_restricted` consumes the
    ``costs`` matrix directly.
    """

    beta: float
    m: int
    loads: np.ndarray
    costs: np.ndarray

    @property
    def T(self) -> int:
        """Horizon length (number of time steps)."""
        return self.loads.shape[0]


def _instance_payload(inst, pipeline: str) -> tuple[dict, dict] | None:
    """Split a built instance into ``(arrays, meta)`` for persistence,
    or ``None`` when the instance has no dense payload (adaptive games
    are replayed live, not materialized)."""
    if pipeline == "general":
        return {"F": inst.F}, {"beta": float(inst.beta)}
    if pipeline == "restricted":
        from ..offline.restricted import restricted_cost_matrix
        return ({"loads": inst.loads, "costs": restricted_cost_matrix(inst)},
                {"beta": float(inst.beta), "m": int(inst.m)})
    if pipeline == "hetero":
        return {"F": inst.F}, {"beta1": float(inst.beta1),
                               "beta2": float(inst.beta2)}
    if pipeline == "game":
        return inst.store_payload()
    raise ValueError(f"unknown pipeline {pipeline!r}")


def _instance_from_payload(pipeline: str, arrays: dict, meta: dict):
    """Rebuild the solver-facing instance object from a stored payload."""
    if pipeline == "general":
        from ..core.instance import Instance
        return Instance.from_matrix(arrays["F"], beta=meta["beta"])
    if pipeline == "restricted":
        return StoredRestrictedInstance(beta=meta["beta"], m=meta["m"],
                                        loads=arrays["loads"],
                                        costs=arrays["costs"])
    if pipeline == "game":
        from ..simulator.bridge import SimulatorGame
        return SimulatorGame.from_payload(arrays, meta)
    from ..extensions import HeterogeneousInstance
    return HeterogeneousInstance(beta1=meta["beta1"], beta2=meta["beta2"],
                                 F=arrays["F"])


class InstanceStore:
    """Content-addressed directory of materialized instance payloads.

    Layout: ``root/<key[:2]>/<key>/meta.json`` plus one ``<name>.npy``
    per payload array.  Writes go through a per-process temp directory
    and an atomic rename, so concurrent materializers of the same
    instance are safe — last writer wins with identical content.  A
    payload that fails to load is treated as missing (callers fall back
    to building the instance).
    """

    def __init__(self, root):
        """Anchor the store at directory ``root`` (created lazily)."""
        self.root = pathlib.Path(root)

    def dir(self, coords: tuple) -> pathlib.Path:
        """Directory of one instance's payload (whether or not present)."""
        key = store_key(coords)
        return self.root / key[:2] / key

    def has(self, coords: tuple) -> bool:
        """Whether a payload for ``coords`` is materialized."""
        return (self.dir(coords) / "meta.json").exists()

    def put(self, coords: tuple, inst) -> bool:
        """Materialize a built instance's payload (atomic rename).
        Returns ``False`` when the instance has no dense payload."""
        scenario, pipeline, T, inst_seed, params = split_coords(coords)
        payload = _instance_payload(inst, pipeline)
        if payload is None:
            return False
        arrays, meta = payload
        target = self.dir(coords)
        target.parent.mkdir(parents=True, exist_ok=True)
        tmp = target.with_name(f"{target.name}.{os.getpid()}.tmp")
        shutil.rmtree(tmp, ignore_errors=True)
        tmp.mkdir()
        for name, arr in arrays.items():
            np.save(tmp / f"{name}.npy", np.asarray(arr))
        (tmp / "meta.json").write_text(json.dumps({
            "store_version": STORE_VERSION, "scenario": scenario,
            "pipeline": pipeline, "T": int(T), "inst_seed": int(inst_seed),
            "params": params, "arrays": sorted(arrays), "meta": meta},
            sort_keys=True))
        try:
            os.replace(tmp, target)
        except OSError:
            # concurrent materializer won the rename race; keep theirs
            shutil.rmtree(tmp, ignore_errors=True)
        return True

    def load(self, coords: tuple, *, mmap: bool = True):
        """Reconstruct the instance of ``coords``; ``None`` on miss or
        unreadable payload.  ``mmap=True`` opens arrays read-only via
        ``np.load(..., mmap_mode="r")`` so processes share pages."""
        target = self.dir(coords)
        try:
            info = json.loads((target / "meta.json").read_text())
            if (info.get("store_version") != STORE_VERSION
                    or info.get("pipeline") != coords[1]):
                return None
            arrays = {name: np.load(target / f"{name}.npy",
                                    mmap_mode="r" if mmap else None)
                      for name in info["arrays"]}
            return _instance_from_payload(coords[1], arrays, info["meta"])
        except (OSError, ValueError, KeyError, TypeError):
            return None

    def materialize(self, coords: tuple) -> bool:
        """Phase-0 step: build and persist ``coords`` unless present.
        Returns whether a payload was newly written (``False`` also for
        payload-free instances, e.g. adaptive games)."""
        if self.has(coords):
            return False
        faults.fire("materialize", "|".join(str(c) for c in coords))
        _STATS["inst_builds"] += 1
        return self.put(coords, _build_coords(coords))

    def stats(self) -> dict:
        """``{"entries", "bytes"}`` of the materialized payloads."""
        entries, size = 0, 0
        if self.root.is_dir():
            for meta in self.root.glob("*/*/meta.json"):
                entries += 1
                size += sum(p.stat().st_size
                            for p in meta.parent.iterdir())
        return {"entries": entries, "bytes": size}


def _build_coords(coords: tuple):
    """Build the scenario instance of normalized ``coords`` live."""
    import json as _json

    from .scenarios import build_instance
    scenario, pipeline, T, inst_seed, params = split_coords(coords)
    return build_instance(scenario, T, inst_seed, pipeline=pipeline,
                          params=_json.loads(params) if params else None)


def _materialize_job(task: tuple) -> bool:
    """Module-level phase-0 job for the process pool."""
    coords, root = task
    return InstanceStore(root).materialize(coords)


def _materialize_chunk(task: tuple) -> list[bool]:
    """Fused phase-0 job: materialize several instances in one worker
    round-trip, reusing one :class:`InstanceStore` handle (the engine's
    chunked dispatch amortizes pickle/IPC across the chunk).

    Materialization is best-effort by contract — phases 1/2 rebuild any
    instance the store lacks — so a failing (or fault-injected) item is
    absorbed as ``False`` instead of aborting the chunk or, on the
    ``n_jobs=1`` inline path, the grid."""
    coords_list, root = task
    store = InstanceStore(root)
    written = []
    for coords in coords_list:
        try:
            written.append(store.materialize(coords))
        except Exception:
            written.append(False)
    return written


# ----------------------------------------------------------------------
# Per-process memo: each process builds/loads any instance at most once.
# ----------------------------------------------------------------------

_MEMO: collections.OrderedDict = collections.OrderedDict()
_MEMO_SIZE = _DEFAULT_MEMO_SIZE
_MEMO_BYTES = _DEFAULT_MEMO_BYTES
_STATS = {"inst_builds": 0, "inst_loads": 0, "inst_memo_hits": 0}


def _resident_nbytes(inst) -> int:
    """Heap bytes an instance pins while memoized.  Arrays backed by a
    store mmap cost nothing: their pages are file-backed and the OS
    evicts them under pressure."""
    total = 0
    for name in ("F", "loads", "costs", "work"):
        arr = getattr(inst, name, None)
        if isinstance(arr, np.ndarray) and not (
                isinstance(arr, np.memmap)
                or isinstance(arr.base, np.memmap)):
            total += arr.nbytes
    return total


def _evict_memo() -> None:
    while len(_MEMO) > max(_MEMO_SIZE, 0) or (
            sum(b for _, b in _MEMO.values()) > _MEMO_BYTES
            and len(_MEMO) > 1):
        _MEMO.popitem(last=False)


def get_instance(coords: tuple, store_root=None):
    """The instance of ``coords``, memoized per process.

    Resolution order: process memo, then the instance store under
    ``store_root`` (mmap load), then a scenario build (counted in
    :func:`build_stats` as ``inst_builds``).  The memo is bounded both
    by entry count and by resident bytes, so persistent pool workers
    don't pin large built instances after a grid finishes.
    """
    memo_key = (coords, None if store_root is None else str(store_root))
    hit = _MEMO.get(memo_key)
    if hit is not None:
        _MEMO.move_to_end(memo_key)
        _STATS["inst_memo_hits"] += 1
        return hit[0]
    inst = None
    if store_root is not None:
        inst = InstanceStore(store_root).load(coords)
        if inst is not None:
            _STATS["inst_loads"] += 1
    if inst is None:
        inst = _build_coords(coords)
        _STATS["inst_builds"] += 1
    if _MEMO_SIZE > 0:
        _MEMO[memo_key] = (inst, _resident_nbytes(inst))
        _evict_memo()
    return inst


def build_stats() -> dict:
    """This process's counters: ``inst_builds`` (scenario builds),
    ``inst_loads`` (store mmap loads), ``inst_memo_hits``."""
    return dict(_STATS)


def clear_memo() -> None:
    """Drop the per-process memo (tests and benchmarks)."""
    _MEMO.clear()


def set_memo_size(size: int) -> int:
    """Resize the per-process memo; ``0`` disables it (the pre-store
    rebuild-per-call behavior benchmarks compare against).  Returns the
    previous size."""
    global _MEMO_SIZE
    previous, _MEMO_SIZE = _MEMO_SIZE, int(size)
    if _MEMO_SIZE <= 0:
        _MEMO.clear()
    else:
        _evict_memo()
    return previous
