"""E8 — Theorem 6: continuous-setting lower bound 2.

Regenerates Lemma 21/23's curves: algorithm B's ratio approaches
2 - eps/2 on the adaptive adversary, and algorithms that deviate from B
(memoryless balance, eager followers) only do worse.
"""

from repro.lower_bounds import ContinuousAdversary, play_game
from repro.online import AlgorithmB, MemorylessBalance, ThresholdFractional

from conftest import record


def test_e8_algorithm_B_curve(benchmark):
    rows = []
    for eps in (0.2, 0.1, 0.05, 0.02):
        adv = ContinuousAdversary(eps)
        T = min(adv.horizon(), 60000)
        res = play_game(adv, AlgorithmB(), T)
        rows.append({"eps": eps, "T": T, "ratio": res.ratio,
                     "lemma21_target": 2 - eps / 2})
    record("E8_continuous_B", rows,
           title="E8: continuous bound, algorithm B (-> 2)")
    assert rows[-1]["ratio"] > 1.95
    for row in rows:
        assert row["ratio"] <= 2.0 + 1e-7
    benchmark(play_game, ContinuousAdversary(0.05), AlgorithmB(), 4000)


def test_e8_deviating_algorithms_do_worse(benchmark):
    """Lemma 23: any algorithm that leaves B's trajectory pays at least
    as much; eager algorithms overshoot well past 2."""
    eps = 0.05
    rows = []
    for make, name in ((AlgorithmB, "algorithm-B"),
                       (ThresholdFractional, "threshold"),
                       (MemorylessBalance, "memoryless")):
        adv = ContinuousAdversary(eps)
        res = play_game(adv, make(), 20000)
        rows.append({"algorithm": name, "ratio": res.ratio})
    record("E8_deviation", rows,
           title="E8: deviating from B never helps")
    b_ratio = rows[0]["ratio"]
    for row in rows[1:]:
        assert row["ratio"] >= b_ratio - 1e-6, row
    benchmark(play_game, ContinuousAdversary(eps), MemorylessBalance(), 2000)
