"""E9 — Theorem 8: randomized lower bound 2 (discrete, oblivious).

Regenerates the reduction of Section 5.3: the oblivious adversary plays
against the expected trajectory; the exact expected cost of the rounded
algorithm (Lemma 24 with equality for the Section 4 rounding) over the
offline optimum approaches 2.
"""

from repro.lower_bounds import (ContinuousAdversary, play_game,
                                play_randomized_game)
from repro.online import ThresholdFractional

from conftest import record


def test_e9_randomized_curve(benchmark):
    rows = []
    for eps in (0.2, 0.1, 0.05, 0.02):
        adv = ContinuousAdversary(eps)
        T = min(adv.horizon(), 60000)
        res = play_randomized_game(adv, ThresholdFractional(), T)
        rows.append({"eps": eps, "T": T, "expected_ratio": res.ratio})
    record("E9_randomized_lb", rows,
           title="E9: randomized lower bound (-> 2)")
    assert rows[-1]["expected_ratio"] > 1.95
    assert all(r["expected_ratio"] <= 2 + 1e-7 for r in rows)
    benchmark(play_randomized_game, ContinuousAdversary(0.05),
              ThresholdFractional(), 4000)


def test_e9_lemma24_equality_for_our_rounding(benchmark):
    """E[C(X)] = C(x-bar) for the Section 4 rounding: the reduction's
    inequality (Lemma 24) is tight here."""
    eps = 0.1
    frac = play_game(ContinuousAdversary(eps), ThresholdFractional(), 10000)
    rand = play_randomized_game(ContinuousAdversary(eps),
                                ThresholdFractional(), 10000)
    record("E9_lemma24", [{
        "fractional_cost": frac.algorithm_cost,
        "expected_rounded_cost": rand.algorithm_cost,
        "difference": abs(frac.algorithm_cost - rand.algorithm_cost),
    }], title="E9: Lemma 24 equality check")
    assert abs(frac.algorithm_cost - rand.algorithm_cost) < 1e-6
    from repro.online import expected_cost_exact
    benchmark(expected_cost_exact, frac.instance, frac.schedule)
