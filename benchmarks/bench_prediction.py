"""E10 — Theorem 10: prediction windows do not break the lower bounds.

Two regenerated series:

* on the dilated adversarial sequences (each adaptive function committed
  as a block of n*w copies at weight 1/(n*w)), LCP(w)'s ratio stays near
  the no-window ratio for every window length w — lookahead is starved;
* on natural diurnal traces, the same window *does* help — the bound is
  about worst cases, not typical ones (this contrast is the practical
  message of Section 5.4).
"""

from repro.analysis import optimal_cost
from repro.lower_bounds import (DeterministicDiscreteAdversary,
                                play_dilated_game, play_game)
from repro.online import LCP, run_online

from conftest import record, trace_suite


def test_e10_dilation_starves_lookahead(benchmark):
    eps = 0.1
    blocks = 3000
    base = play_game(DeterministicDiscreteAdversary(eps), LCP(), blocks)
    rows = [{"w": 0, "repeat": 1, "ratio": base.ratio}]
    for w in (1, 2, 4):
        repeat = 4 * w
        res = play_dilated_game(DeterministicDiscreteAdversary(eps),
                                LCP(lookahead=w), blocks=blocks,
                                repeat=repeat)
        rows.append({"w": w, "repeat": repeat, "ratio": res.ratio})
    record("E10_dilation", rows,
           title="E10: LCP(w) on dilated adversarial sequences")
    for row in rows[1:]:
        assert row["ratio"] >= base.ratio - 0.35
    benchmark(play_dilated_game, DeterministicDiscreteAdversary(eps),
              LCP(lookahead=2), blocks=300, repeat=8)


def test_e10_window_helps_on_traces(benchmark):
    """Series: window-algorithm cost over OPT vs w on diurnal traces —
    decreasing for every controller (LCP(w), RHC, AFHC).

    Engine-backed: one ``run_grid`` per window length; the three seeds'
    offline optima are hoisted once in phase 1 and shared by all three
    controllers."""
    from repro.runner import GridSpec, build_instance, run_grid
    rows = []
    for w in (0, 2, 6, 12):
        grid_rows = run_grid(GridSpec(scenarios=("diurnal",),
                                      algorithms=("lcp", "rhc", "afhc"),
                                      seeds=(0, 1, 2), sizes=(168,),
                                      lookahead=w))
        totals = {a: sum(r["cost"] for r in grid_rows
                         if r["algorithm"] == a)
                  for a in ("lcp", "rhc", "afhc")}
        opt_total = sum(r["opt"] for r in grid_rows
                        if r["algorithm"] == "lcp")
        rows.append({"w": w,
                     "lcp_over_opt": totals["lcp"] / opt_total,
                     "rhc_over_opt": totals["rhc"] / opt_total,
                     "afhc_over_opt": totals["afhc"] / opt_total})
    record("E10_window_on_traces", rows,
           title="E10: prediction window value on diurnal traces")
    for key in ("lcp_over_opt", "rhc_over_opt", "afhc_over_opt"):
        assert rows[-1][key] <= rows[0][key] + 1e-9, key
        assert all(r[key] <= 3.0 + 1e-7 for r in rows), key
    inst = build_instance("diurnal", 168, 2)
    benchmark(run_online, inst, LCP(lookahead=12))


def test_e10_forecast_noise_decays_window_value(benchmark):
    """Series: the window's value under forecast noise — perfect
    forecasts recover most of the gap to OPT, useless ones none."""
    from repro.workloads import forecast_runner
    rows = []
    for noise in (0.0, 0.2, 1.0, 4.0):
        total = opt_total = 0.0
        for seed in range(3):
            name, inst = trace_suite(T=168, seed=seed)[0]
            total += forecast_runner(inst, LCP(lookahead=12), noise=noise,
                                     rng=seed).cost
            opt_total += optimal_cost(inst)
        rows.append({"noise": noise, "cost_over_opt": total / opt_total})
    record("E10_forecast_noise", rows,
           title="E10: window value under forecast noise (LCP, w=12)")
    assert rows[0]["cost_over_opt"] <= rows[-1]["cost_over_opt"] + 1e-9
    for row in rows:
        assert row["cost_over_opt"] <= 3.0 + 1e-7
    name, inst = trace_suite(T=168, seed=0)[0]
    benchmark(forecast_runner, inst, LCP(lookahead=12), noise=0.2, rng=0)
