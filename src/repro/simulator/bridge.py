"""Bridge between the simulator and the paper's abstract cost model.

``bridge_instance`` tabulates, for every step and every possible active
count ``j``, the *one-step* simulated cost (energy + weighted latency)
assuming the backlog is drained each step — a memoryless surrogate of
the simulator.  The result is a valid convex instance (convexified by
increment sorting where queueing makes the raw table slightly
non-convex) whose optimal schedules can then be *replayed* through the
real simulator.

This closes the loop the paper's model opens: Section 2's offline
algorithm runs on the bridged instance, and ``replay_schedule`` measures
what that schedule actually costs in the simulator — energy, latency,
backlog — so the abstraction can be validated (benchmark E13: optimized
schedules beat static provisioning in *simulated* cost, and abstract
cost tracks simulated cost).
"""

from __future__ import annotations

import numpy as np

from ..core.instance import Instance
from .datacenter import DataCenter, ServerPowerModel, SimLog
from .jobs import JobTrace

__all__ = ["bridge_instance", "replay_schedule", "simulated_cost"]


_MAX_DELAY_FACTOR = 10.0


def _one_step_cost(power: ServerPowerModel, j: int, work: float,
                   latency_weight: float) -> float:
    """Expected one-step cost with ``j`` ready servers and fresh ``work``.

    The latency term uses the M/G/1-style sojourn inflation
    ``1/(1 - rho)`` (capped): a myopic "half a step per served unit"
    estimate badly underestimates the *compounding* backlog the real
    simulator accumulates when utilization approaches 1, which would
    make the optimizer under-provision.  The cap keeps the table finite
    and bounds the convexification error.
    """
    capacity = j * power.service_rate
    served = min(work, capacity)
    leftover = work - served
    busy = served / power.service_rate if power.service_rate > 0 else 0.0
    energy = busy * power.busy_power + (j - busy) * power.idle_power
    if capacity > 0:
        rho = min(work / capacity, 1.0)
        delay = min(1.0 / (1.0 - rho), _MAX_DELAY_FACTOR) if rho < 1.0 \
            else _MAX_DELAY_FACTOR
    else:
        delay = _MAX_DELAY_FACTOR
    # Served work waits ~half a step inflated by congestion; work that
    # cannot be served this step waits at least a full inflated step.
    latency = 0.5 * served * delay + leftover * (1.0 + delay)
    return energy + latency_weight * latency


def bridge_instance(trace: JobTrace | np.ndarray, m: int, beta: float, *,
                    power: ServerPowerModel | None = None,
                    latency_weight: float = 2.0,
                    smoothing: int = 1) -> Instance:
    """Tabulate the simulator's one-step costs into a convex instance.

    ``trace`` may be a :class:`JobTrace` or a plain work array; the
    controller-visible load is the ``smoothing``-window moving average
    (1 = clairvoyant per-step work).  Sleep power of the ``m - j``
    inactive servers is added so absolute costs are comparable with the
    simulator's energy accounting.
    """
    power = power or ServerPowerModel()
    if isinstance(trace, JobTrace):
        work = trace.smoothed_loads(smoothing)
    else:
        work = np.asarray(trace, dtype=np.float64)
    T = work.shape[0]
    F = np.empty((T, m + 1), dtype=np.float64)
    for t in range(T):
        row = np.array([_one_step_cost(power, j, float(work[t]),
                                       latency_weight)
                        for j in range(m + 1)])
        row += power.sleep_power * (m - np.arange(m + 1))
        # Queueing kinks can leave tiny non-convexities at the
        # served/unserved boundary; restore convexity by sorting the
        # increments (does not move the values off the true table by
        # more than the kink size).
        inc = np.sort(np.diff(row))
        row = np.concatenate([[row[0]], row[0] + np.cumsum(inc)])
        row -= min(row.min(), 0.0)
        F[t] = row
    return Instance(beta=beta, F=F)


def replay_schedule(schedule, trace: JobTrace | np.ndarray, m: int, *,
                    power: ServerPowerModel | None = None) -> SimLog:
    """Run a schedule through the real simulator against the trace."""
    work = trace.work if isinstance(trace, JobTrace) else np.asarray(
        trace, dtype=np.float64)
    dc = DataCenter(m, power or ServerPowerModel())
    return dc.run(np.asarray(schedule), work)


def simulated_cost(schedule, trace: JobTrace | np.ndarray, m: int, *,
                   power: ServerPowerModel | None = None,
                   latency_weight: float = 2.0) -> float:
    """Scalar simulated objective of a schedule (energy + w * latency)."""
    log = replay_schedule(schedule, trace, m, power=power)
    return log.total_cost(latency_weight)
