"""Property-based tests (hypothesis) on the core invariants.

Strategies generate arbitrary convex non-negative cost matrices; the
properties are the paper's headline guarantees plus structural identities.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.instance import Instance
from repro.core.schedule import cost, cost_L, cost_U, symmetric_cost
from repro.offline import (ceil_schedule, floor_schedule, solve_binary_search,
                           solve_bruteforce, solve_dp, solve_graph)
from repro.online import (LCP, ThresholdFractional, WorkFunctions,
                          exact_rounding_distribution, expected_cost_exact,
                          run_online)

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

slope_floats = st.floats(min_value=-8.0, max_value=8.0, allow_nan=False)


@st.composite
def convex_instances(draw, max_T=8, max_m=6):
    T = draw(st.integers(1, max_T))
    m = draw(st.integers(1, max_m))
    beta = draw(st.floats(min_value=0.1, max_value=5.0))
    rows = []
    for _ in range(T):
        slopes = sorted(draw(st.lists(slope_floats, min_size=m, max_size=m)))
        vals = np.concatenate([[0.0], np.cumsum(slopes)])
        vals -= vals.min()
        rows.append(vals)
    return Instance(beta=float(beta), F=np.array(rows))


@st.composite
def fractional_schedules(draw, max_T=12, max_m=5):
    T = draw(st.integers(1, max_T))
    m = draw(st.integers(1, max_m))
    xs = draw(st.lists(st.floats(min_value=0.0, max_value=float(m),
                                 allow_nan=False),
                       min_size=T, max_size=T))
    return m, np.asarray(xs, dtype=np.float64)


common = settings(max_examples=60, deadline=None,
                  suppress_health_check=[HealthCheck.too_slow])


# ---------------------------------------------------------------------------
# Offline optimality
# ---------------------------------------------------------------------------

@common
@given(convex_instances(max_T=5, max_m=4))
def test_dp_equals_bruteforce(inst):
    assert solve_dp(inst).cost == pytest.approx(solve_bruteforce(inst).cost)


@common
@given(convex_instances(max_T=8, max_m=6))
def test_binary_search_equals_dp(inst):
    assert solve_binary_search(inst).cost == pytest.approx(
        solve_dp(inst).cost)


@common
@given(convex_instances(max_T=6, max_m=5))
def test_graph_equals_dp(inst):
    assert solve_graph(inst).cost == pytest.approx(solve_dp(inst).cost)


@common
@given(convex_instances())
def test_dp_schedule_achieves_reported_cost(inst):
    res = solve_dp(inst)
    assert cost(inst, res.schedule) == pytest.approx(res.cost)


# ---------------------------------------------------------------------------
# Online guarantees
# ---------------------------------------------------------------------------

@common
@given(convex_instances())
def test_lcp_three_competitive(inst):
    opt = solve_dp(inst, return_schedule=False).cost
    res = run_online(inst, LCP())
    assert res.cost <= 3 * opt + 1e-7


@common
@given(convex_instances())
def test_threshold_two_competitive_with_slack(inst):
    opt = solve_dp(inst, return_schedule=False).cost
    res = run_online(inst, ThresholdFractional(validate=True))
    slack = float(inst.F.min(axis=1).sum())
    assert res.cost <= 2 * opt - slack + 1e-7


@common
@given(convex_instances())
def test_lcp_within_workfunction_bounds(inst):
    algo = LCP(record_bounds=True)
    res = run_online(inst, algo)
    for x, (lo, hi) in zip(res.schedule.astype(int), algo.bounds_log):
        assert lo <= x <= hi


# ---------------------------------------------------------------------------
# Rounding identities (Lemmas 18-20) on arbitrary fractional schedules
# ---------------------------------------------------------------------------

def _snapped_frac(xs):
    """frac() under the rounding kernel's integer-snapping semantics."""
    snapped = np.where(np.abs(xs - np.round(xs)) <= 1e-9, np.round(xs), xs)
    return snapped - np.floor(snapped)


@common
@given(fractional_schedules())
def test_rounding_marginals_are_frac(args):
    _, xs = args
    dist = exact_rounding_distribution(xs)
    np.testing.assert_allclose(dist.p_upper, _snapped_frac(xs), atol=1e-8)


@common
@given(fractional_schedules())
def test_rounding_switching_identity(args):
    _, xs = args
    dist = exact_rounding_distribution(xs)
    d = np.diff(np.concatenate([[0.0], xs]))
    np.testing.assert_allclose(dist.expected_up, np.maximum(d, 0.0),
                               atol=1e-8)


@common
@given(convex_instances(max_T=6, max_m=5), st.randoms(use_true_random=False))
def test_expected_cost_equals_fractional_cost(inst, rnd):
    xs = np.array([rnd.uniform(0, inst.m) for _ in range(inst.T)])
    res = expected_cost_exact(inst, xs)
    assert res["total"] == pytest.approx(res["fractional_total"], abs=1e-7)


# ---------------------------------------------------------------------------
# Structural identities
# ---------------------------------------------------------------------------

@common
@given(convex_instances(), st.randoms(use_true_random=False))
def test_eq14_and_symmetric_identities(inst, rnd):
    X = np.array([rnd.randint(0, inst.m) for _ in range(inst.T)])
    assert cost_L(inst, X) == pytest.approx(cost(inst, X))
    for tau in range(1, inst.T + 1):
        assert cost_L(inst, X, tau) == pytest.approx(
            cost_U(inst, X, tau) + inst.beta * X[tau - 1])
    assert symmetric_cost(inst, X) == pytest.approx(cost(inst, X))


@common
@given(convex_instances())
def test_workfunction_lemma7_and_convexity(inst):
    wf = WorkFunctions(inst.m, inst.beta, track_U=True)
    states = np.arange(inst.m + 1)
    for t in range(inst.T):
        wf.update(inst.F[t])
        np.testing.assert_allclose(wf.CL, wf._CU + inst.beta * states,
                                   atol=1e-8)
        scale = max(1.0, float(np.abs(wf.CL).max()))
        assert np.all(np.diff(wf.CL, n=2) >= -1e-9 * scale)


@common
@given(convex_instances(max_T=5, max_m=4), st.floats(0.05, 0.95))
def test_lemma4_floor_ceil_on_blends(inst, lam):
    lo = solve_dp(inst, tie="smallest").schedule
    hi = solve_dp(inst, tie="largest").schedule
    blend = lam * lo + (1 - lam) * hi
    opt = solve_dp(inst, return_schedule=False).cost
    if cost(inst, blend, integral=False) <= opt + 1e-9:
        assert cost(inst, floor_schedule(blend)) == pytest.approx(opt)
        assert cost(inst, ceil_schedule(blend)) == pytest.approx(opt)


@common
@given(convex_instances(max_T=6, max_m=6))
def test_padding_preserves_optimum(inst):
    from repro.core.transforms import pad_to_power_of_two
    padded = pad_to_power_of_two(inst, eps=0.5)
    assert solve_dp(padded, return_schedule=False).cost == pytest.approx(
        solve_dp(inst, return_schedule=False).cost)
    res = solve_dp(padded)
    assert np.all(res.schedule <= inst.m)
