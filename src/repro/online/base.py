"""Online algorithm protocol and replay harness.

An online algorithm sees the tabulated cost function ``f_t`` (one row of
the instance's cost matrix) and must commit to a state ``x_t`` before
``f_{t+1}`` is revealed.  Algorithms with a prediction window ``w``
additionally receive the next ``w`` rows (Section 5.4).

Fractional algorithms return float states in ``[0, m]`` and are evaluated
against the continuous extension ``P-bar``; integral algorithms return
integer states.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..core.instance import Instance
from ..core.schedule import cost as schedule_cost

__all__ = ["OnlineAlgorithm", "OnlineResult", "run_online"]


class OnlineAlgorithm:
    """Base class for online algorithms.

    Subclasses set :attr:`name`, :attr:`fractional` and
    :attr:`lookahead`, implement :meth:`reset` and :meth:`step`, and may
    keep arbitrary internal state between steps.
    """

    name: str = "online"
    #: whether :meth:`step` returns fractional states
    fractional: bool = False
    #: prediction-window length ``w`` (rows passed via ``future``)
    lookahead: int = 0

    def reset(self, m: int, beta: float) -> None:
        """Prepare for a fresh instance with states ``0..m``."""
        raise NotImplementedError

    def step(self, f_row: np.ndarray, future: np.ndarray | None = None):
        """Process the next cost function and return the chosen state.

        ``f_row`` is the tabulated ``f_t`` on ``0..m``; ``future`` holds
        the next ``min(w, remaining)`` rows when ``lookahead > 0``.
        """
        raise NotImplementedError

    @property
    def state(self):
        """Most recent state (``x_{t-1}``); defined after :meth:`reset`."""
        return self._state

    def _set_state(self, x) -> None:
        self._state = x


@dataclasses.dataclass(frozen=True)
class OnlineResult:
    """Replay result: schedule, its cost, and bookkeeping."""

    schedule: np.ndarray
    cost: float
    name: str
    fractional: bool

    def __post_init__(self):
        s = np.ascontiguousarray(np.asarray(self.schedule, dtype=np.float64))
        s.setflags(write=False)
        object.__setattr__(self, "schedule", s)


def run_online(instance: Instance, algorithm: OnlineAlgorithm) -> OnlineResult:
    """Replay an instance through an online algorithm.

    The algorithm sees rows of ``instance.F`` one at a time (plus its
    prediction window, if any) and the resulting schedule is priced with
    eq. (1) — via the continuous extension for fractional algorithms.
    """
    T, m = instance.T, instance.m
    algorithm.reset(m, instance.beta)
    dtype = np.float64 if algorithm.fractional else np.int64
    xs = np.empty(T, dtype=dtype)
    w = algorithm.lookahead
    for t in range(T):
        future = instance.F[t + 1:t + 1 + w] if w > 0 else None
        x = algorithm.step(instance.F[t], future)
        if algorithm.fractional:
            xf = float(x)
            if not -1e-9 <= xf <= m + 1e-9:
                raise ValueError(
                    f"{algorithm.name} left [0, m] at t={t + 1}: {xf}")
            xs[t] = min(max(xf, 0.0), float(m))
        else:
            xi = int(x)
            if not 0 <= xi <= m:
                raise ValueError(
                    f"{algorithm.name} left [0, m] at t={t + 1}: {xi}")
            xs[t] = xi
    total = schedule_cost(instance, xs.astype(np.float64),
                          integral=not algorithm.fractional)
    return OnlineResult(schedule=xs, cost=total, name=algorithm.name,
                        fractional=algorithm.fractional)
