"""Tests for text plotting and the regret metric."""

import numpy as np
import pytest

from repro.analysis import (block_chart, regret_vs_static, schedule_chart,
                            sparkline)
from repro.offline import solve_dp
from repro.online import solve_static
from tests.conftest import random_convex_instance, trace_instance


class TestSparkline:
    def test_length_matches_input(self):
        assert len(sparkline([1, 2, 3])) == 3

    def test_monotone_values_monotone_glyphs(self):
        s = sparkline(np.arange(8))
        assert s == "▁▂▃▄▅▆▇█"

    def test_flat_series(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_empty(self):
        assert sparkline([]) == ""

    def test_explicit_bounds(self):
        s = sparkline([5.0], lo=0.0, hi=10.0)
        assert s in "▄▅"


class TestBlockChart:
    def test_renders_label_and_value(self):
        out = block_chart(3.0, label="energy", unit="J")
        assert "energy" in out and "###" in out and "3J" in out

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            block_chart(-1.0)


class TestScheduleChart:
    def test_two_aligned_lines(self):
        out = schedule_chart([1, 2, 3], [2, 2, 2])
        lines = out.splitlines()
        assert lines[0].startswith("load")
        assert lines[1].startswith("servers")
        assert len(lines[0]) == len(lines[1])

    def test_subsampling(self):
        out = schedule_chart(np.arange(10), np.arange(10), every=2,
                             height_labels=False)
        assert len(out.splitlines()[0]) == len("load     ") + 5

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            schedule_chart([1, 2], [1])


class TestRegret:
    def test_optimal_schedule_has_nonpositive_regret(self):
        """OPT can always play the best static schedule, so its regret
        against static is <= 0."""
        rng = np.random.default_rng(240)
        for _ in range(8):
            inst = random_convex_instance(rng, 10, 6,
                                          float(rng.uniform(0.3, 3)))
            res = solve_dp(inst)
            assert regret_vs_static(inst, res.schedule) <= 1e-9

    def test_static_schedule_has_zero_regret(self):
        inst = trace_instance(seed=0, T=48, peak=10.0)
        static = solve_static(inst)
        assert regret_vs_static(inst, static.schedule) == pytest.approx(0.0)

    def test_bad_schedule_positive_regret(self):
        inst = trace_instance(seed=1, T=48, peak=10.0)
        bad = np.zeros(48)
        bad[::2] = inst.m
        assert regret_vs_static(inst, bad) > 0
