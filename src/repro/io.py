"""Instance and schedule persistence.

Instances round-trip through NumPy's ``.npz`` container; schedules and
load traces through one-value-per-line CSV (the format the CLI accepts).
"""

from __future__ import annotations

import pathlib

import numpy as np

from .core.instance import Instance

__all__ = ["save_instance", "load_instance", "save_schedule",
           "load_schedule"]

_FORMAT_VERSION = 1


def save_instance(path, instance: Instance) -> None:
    """Persist an instance as ``.npz`` (cost matrix + beta + version)."""
    path = pathlib.Path(path)
    np.savez_compressed(path, F=instance.F,
                        beta=np.float64(instance.beta),
                        version=np.int64(_FORMAT_VERSION))


def load_instance(path) -> Instance:
    """Load an instance saved by :func:`save_instance` (re-validated)."""
    with np.load(pathlib.Path(path)) as data:
        version = int(data["version"]) if "version" in data else None
        if version != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported instance file version {version!r}")
        return Instance(beta=float(data["beta"]), F=np.asarray(data["F"]))


def save_schedule(path, schedule) -> None:
    """Write a schedule as one value per line (ints stay ints)."""
    x = np.asarray(schedule)
    path = pathlib.Path(path)
    if np.issubdtype(x.dtype, np.integer) or np.allclose(
            x, np.round(x), atol=1e-12):
        np.savetxt(path, np.asarray(np.round(x), dtype=np.int64), fmt="%d")
    else:
        np.savetxt(path, x, fmt="%.12g")


def load_schedule(path) -> np.ndarray:
    """Read a one-value-per-line schedule file."""
    x = np.loadtxt(pathlib.Path(path), dtype=np.float64, ndmin=1)
    if x.ndim != 1:
        raise ValueError("schedule file must contain one value per line")
    return x
