"""E14 — extension demo: heterogeneous fleets (two server types).

Not a paper experiment (the paper is homogeneous; the authors develop
the heterogeneous case in follow-up work) — this bench demonstrates and
times the exact product-space DP and records the fleet-mix behavior:
the frugal type carries the base load, the fast type rides the peaks,
and the exact DP beats static pairs and per-step greedy.
"""

import numpy as np

from repro.extensions import (hetero_cost, hetero_instance_from_loads,
                              solve_dp_hetero, solve_greedy_hetero,
                              solve_static_hetero)
from repro.workloads import diurnal_loads

from conftest import record


def _instance(T=96, seed=0):
    rng = np.random.default_rng(seed)
    loads = diurnal_loads(T, peak=8.0, base_frac=0.2, noise=0.05, rng=rng)
    return hetero_instance_from_loads(loads, m1=10, m2=12, beta1=4.0,
                                      beta2=1.0)


def test_e14_policy_table(benchmark):
    inst = _instance()
    X1, X2, opt = solve_dp_hetero(inst)
    sX1, sX2, static = solve_static_hetero(inst)
    gX1, gX2, greedy = solve_greedy_hetero(inst)
    rows = [
        {"policy": "product DP (exact)", "cost": opt,
         "type1_mean": float(X1.mean()), "type2_mean": float(X2.mean())},
        {"policy": "best static pair", "cost": static,
         "type1_mean": float(sX1.mean()), "type2_mean": float(sX2.mean())},
        {"policy": "greedy per-step", "cost": greedy,
         "type1_mean": float(gX1.mean()), "type2_mean": float(gX2.mean())},
    ]
    record("E14_hetero_policies", rows,
           title="E14: two-type fleet policies (extension)")
    assert opt <= static + 1e-9
    assert opt <= greedy + 1e-9
    assert hetero_cost(inst, X1, X2) == np.float64(opt) or \
        abs(hetero_cost(inst, X1, X2) - opt) < 1e-9
    benchmark(solve_dp_hetero, inst)


def test_e14_mix_shifts_with_demand(benchmark):
    """The optimal mix uses proportionally more fast servers at peak."""
    inst = _instance(seed=3)
    X1, X2, _ = solve_dp_hetero(inst)
    # Peak hours (around t = 12 mod 24) vs trough hours (t = 0 mod 24).
    peak_idx = [t for t in range(inst.T) if 8 <= t % 24 <= 16]
    trough_idx = [t for t in range(inst.T) if t % 24 <= 4]
    peak_fast = float(np.mean(X1[peak_idx]))
    trough_fast = float(np.mean(X1[trough_idx]))
    rows = [{"window": "peak hours", "type1_mean": peak_fast,
             "type2_mean": float(np.mean(X2[peak_idx]))},
            {"window": "trough hours", "type1_mean": trough_fast,
             "type2_mean": float(np.mean(X2[trough_idx]))}]
    record("E14_mix_shift", rows, title="E14: fleet mix by time of day")
    assert peak_fast > trough_fast
    benchmark(solve_static_hetero, inst)
