"""Game runner: online algorithms vs. adaptive adversaries (Section 5).

``play_game`` runs the adaptive loop (the adversary sees the algorithm's
committed states, the algorithm sees the functions one at a time), then
prices the resulting *fixed* instance: the algorithm by its actual
trajectory, the adversary by the optimal offline schedule of Section 2.
The reported ratio is the empirical competitive ratio on that instance.

``play_randomized_game`` implements the Theorem 8 reduction: an oblivious
adversary can precompute the expected trajectory of a randomized
algorithm, so the game is played against the *fractional* expectation and
the randomized algorithm's exact expected cost (Lemmas 18–20 make it
computable in closed form) is compared with the offline optimum.

``dilated`` games implement the Theorem 10 construction: each adaptive
choice is committed for a block of ``n*w`` identical, ``1/(n*w)``-scaled
functions, which starves a prediction window of length ``w`` of useful
information.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..core.instance import Instance
from ..core.schedule import cost as schedule_cost
from ..offline.dp import solve_dp
from ..online.base import OnlineAlgorithm
from ..online.randomized import expected_cost_exact

__all__ = ["GameResult", "LowerBoundGame", "GamePlayer", "play_game",
           "play_randomized_game", "play_dilated_game", "ratio_curve"]


@dataclasses.dataclass(frozen=True)
class GameResult:
    """Outcome of one adversarial game."""

    instance: Instance
    schedule: np.ndarray
    algorithm_cost: float
    opt_cost: float
    name: str

    @property
    def ratio(self) -> float:
        return self.algorithm_cost / self.opt_cost


def play_game(adversary, algorithm: OnlineAlgorithm,
              T: int | None = None) -> GameResult:
    """Adaptive game: ``T`` rounds of adversary-vs-algorithm.

    ``T`` defaults to the adversary's own ``horizon()``.
    """
    T = adversary.horizon() if T is None else T
    adversary.reset()
    algorithm.reset(adversary.m, adversary.beta)
    rows = []
    xs = np.empty(T, dtype=np.float64)
    prev = algorithm.state
    for t in range(T):
        row = adversary.next_function(prev)
        rows.append(row)
        prev = algorithm.step(row)
        xs[t] = prev
    instance = Instance(beta=adversary.beta, F=np.stack(rows))
    alg_cost = schedule_cost(instance, xs, integral=not algorithm.fractional)
    opt = solve_dp(instance, return_schedule=False).cost
    return GameResult(instance=instance, schedule=xs, algorithm_cost=alg_cost,
                      opt_cost=opt, name=algorithm.name)


def play_randomized_game(adversary, inner_fractional: OnlineAlgorithm,
                         T: int | None = None) -> GameResult:
    """Theorem 8 game: oblivious adversary vs. a rounded fractional
    algorithm, scored by exact expected cost.

    The adversary adapts to the deterministic *expected* trajectory
    (= the inner fractional algorithm's states); the reported algorithm
    cost is the exact expectation of the Section 4 rounding of that
    trajectory, which by Lemma 24 lower-bounds no randomized algorithm
    can beat.
    """
    if not inner_fractional.fractional:
        raise ValueError("inner algorithm must be fractional")
    game = play_game(adversary, inner_fractional, T)
    exp = expected_cost_exact(game.instance, game.schedule)
    return GameResult(instance=game.instance, schedule=game.schedule,
                      algorithm_cost=exp["total"], opt_cost=game.opt_cost,
                      name=f"rounded({inner_fractional.name})")


def play_dilated_game(adversary, algorithm: OnlineAlgorithm, *,
                      blocks: int | None = None, repeat: int = 1) -> GameResult:
    """Theorem 10 game: each adaptive function is committed as a block of
    ``repeat`` identical copies scaled by ``1/repeat``.

    Within a block the algorithm's prediction window receives the
    remaining committed copies (the adversary never reveals the next
    block, matching the theorem's accounting where only the last ``w``
    functions of a block leak information).
    """
    blocks = adversary.horizon() if blocks is None else blocks
    if repeat < 1:
        raise ValueError("repeat must be at least 1")
    adversary.reset()
    algorithm.reset(adversary.m, adversary.beta)
    w = algorithm.lookahead
    rows = []
    xs = []
    prev = algorithm.state
    for _ in range(blocks):
        row = adversary.next_function(prev) / float(repeat)
        block = np.broadcast_to(row, (repeat, row.shape[0]))
        for i in range(repeat):
            future = block[i + 1:i + 1 + w] if w > 0 else None
            prev = algorithm.step(row, future)
            rows.append(row)
            xs.append(prev)
    xs = np.asarray(xs, dtype=np.float64)
    instance = Instance(beta=adversary.beta, F=np.stack(rows))
    alg_cost = schedule_cost(instance, xs, integral=not algorithm.fractional)
    opt = solve_dp(instance, return_schedule=False).cost
    return GameResult(instance=instance, schedule=xs, algorithm_cost=alg_cost,
                      opt_cost=opt, name=algorithm.name)


# ----------------------------------------------------------------------
# Engine adapters: the Section 5 games as `game`-pipeline instances.
# ----------------------------------------------------------------------

#: adversary families playable as engine jobs, with their ratio limits
_ADVERSARIES = {"deterministic": 3.0, "continuous": 2.0, "restricted": 3.0}


@dataclasses.dataclass(frozen=True)
class LowerBoundGame:
    """One Section 5 lower-bound game as a `game`-pipeline instance.

    The engine treats this like any other scenario instance, but the
    workload is *adaptive* — the adversary's functions depend on the
    algorithm's play — so there is no dense payload to materialize
    (``store_payload`` is ``None``) and no algorithm-independent offline
    optimum to hoist (``baseline`` reports ``opt=None``; each job prices
    the fixed instance its own game realized).
    """

    kind: str            # key into _ADVERSARIES
    eps: float           # adversary hinge slope
    max_steps: int       # cap on the adversary's horizon

    def __post_init__(self):
        if self.kind not in _ADVERSARIES:
            raise ValueError(f"unknown adversary kind {self.kind!r}; "
                             f"choose from {sorted(_ADVERSARIES)}")

    @property
    def T(self) -> int:
        return self.max_steps

    @property
    def limit(self) -> float:
        """The bound the ratio curve approaches as eps -> 0."""
        return _ADVERSARIES[self.kind]

    def adversary(self):
        from .adversary import (ContinuousAdversary,
                                DeterministicDiscreteAdversary,
                                RestrictedDiscreteAdversary)
        cls = {"deterministic": DeterministicDiscreteAdversary,
               "continuous": ContinuousAdversary,
               "restricted": RestrictedDiscreteAdversary}[self.kind]
        return cls(self.eps)

    def store_payload(self):
        return None  # adaptive: nothing to materialize

    def baseline(self) -> dict:
        """Phase-1 record: shape metadata only (no hoistable optimum)."""
        adv = self.adversary()
        return {"opt": None, "m": int(adv.m), "beta": float(adv.beta)}


@dataclasses.dataclass(frozen=True)
class GamePlayer:
    """A registered `game`-pipeline algorithm: plays one online
    algorithm against a :class:`LowerBoundGame`'s adversary.

    ``randomized=True`` plays the Theorem 8 reduction
    (:func:`play_randomized_game` on the fractional inner algorithm)
    instead of the adaptive game.  Calling the player returns the row
    fragment the engine merges into the grid row: ``cost``, the game's
    own offline ``opt``, and the curve coordinates (``eps``,
    realized-``game_T``, ``limit``).
    """

    algorithm: str
    randomized: bool = False
    lookahead: int = 0

    def _make_algorithm(self) -> OnlineAlgorithm:
        from ..online import (LCP, AlgorithmB, FollowTheMinimizer,
                              MemorylessBalance, ThresholdFractional)
        cls = {"lcp": LCP, "algorithm-b": AlgorithmB,
               "threshold": ThresholdFractional,
               "memoryless": MemorylessBalance,
               "followmin": FollowTheMinimizer}[self.algorithm]
        if self.lookahead and self.algorithm == "lcp":
            return cls(lookahead=self.lookahead)
        return cls()

    def __call__(self, game) -> dict:
        if not isinstance(game, LowerBoundGame):
            raise TypeError(
                f"{type(game).__name__} is not a lower-bound game; "
                "lb-* players only run on lb-* scenarios")
        adv = game.adversary()
        T = min(adv.horizon(), game.max_steps)
        play = play_randomized_game if self.randomized else play_game
        res = play(adv, self._make_algorithm(), T)
        return {"cost": float(res.algorithm_cost),
                "opt": float(res.opt_cost),
                "eps": float(game.eps), "game_T": int(res.instance.T),
                "limit": game.limit}


def ratio_curve(make_adversary, make_algorithm, eps_values,
                T_cap: int | None = None) -> list[dict]:
    """Ratio as a function of ``eps`` (the lower-bound curves E6–E9).

    ``make_adversary(eps)`` and ``make_algorithm()`` are factories; the
    game length is the adversary's horizon capped at ``T_cap``.
    """
    out = []
    for eps in eps_values:
        adv = make_adversary(eps)
        T = adv.horizon()
        if T_cap is not None:
            T = min(T, T_cap)
        res = play_game(adv, make_algorithm(), T)
        out.append({"eps": eps, "T": T, "ratio": res.ratio,
                    "alg_cost": res.algorithm_cost, "opt_cost": res.opt_cost})
    return out
