"""Heterogeneous data centers (two server types) — the paper's outlook.

The paper studies homogeneous servers and notes (Section 1) that the
heterogeneous problem is a special case of convex function chasing; the
authors develop it fully in follow-up work.  This extension implements
the natural two-type generalization *exactly* for laptop-scale state
spaces:

* state ``x = (x_1, x_2)`` with ``x_j ∈ {0..m_j}`` active servers of
  type ``j`` (e.g. high-performance vs energy-efficient machines);
* objective ``Σ_t f_t(x_t) + Σ_t Σ_j β_j (x_{t,j} − x_{t−1,j})⁺`` with
  per-type switching costs and jointly convex operating costs;
* an exact DP over the product space.  The switching cost is separable,
  so the transition minimization factorizes into two one-dimensional
  prefix/suffix sweeps — ``O(T m_1 m_2)`` instead of the naive
  ``O(T (m_1 m_2)^2)``, the same trick that makes the homogeneous DP
  linear per step.

Operating-cost builder: given a load trace, servers of type ``j`` with
service rate ``s_j`` and power ``e_j``, the per-step cost is energy plus
a congestion-inflated latency on the pooled capacity — jointly convex in
``(x_1, x_2)`` along integer lines, which is all the DP needs (it is
exact regardless; convexity just matches the homogeneous modeling).

Baselines: best static pair, per-step greedy.  The homogeneous solvers
are recovered exactly when one type has capacity zero (consistency test).
"""

from __future__ import annotations

import dataclasses

import numpy as np

__all__ = [
    "HeterogeneousInstance",
    "hetero_instance_from_loads",
    "solve_dp_hetero",
    "solve_static_hetero",
    "solve_greedy_hetero",
    "hetero_cost",
]


@dataclasses.dataclass(frozen=True)
class HeterogeneousInstance:
    """Two-type instance: cost tensor ``F[t, x1, x2]`` and per-type betas."""

    beta1: float
    beta2: float
    F: np.ndarray

    def __post_init__(self):
        if self.beta1 <= 0 or self.beta2 <= 0:
            raise ValueError("both switching costs must be positive")
        F = np.ascontiguousarray(np.asarray(self.F, dtype=np.float64))
        if F.ndim != 3:
            raise ValueError("cost tensor must have shape (T, m1+1, m2+1)")
        if F.size and (not np.all(np.isfinite(F)) or np.any(F < -1e-12)):
            raise ValueError("costs must be finite and non-negative")
        F.setflags(write=False)
        object.__setattr__(self, "F", F)

    @property
    def T(self) -> int:
        return self.F.shape[0]

    @property
    def m1(self) -> int:
        return self.F.shape[1] - 1

    @property
    def m2(self) -> int:
        return self.F.shape[2] - 1


def hetero_instance_from_loads(loads, m1: int, m2: int, *,
                               beta1: float, beta2: float,
                               rate1: float = 1.0, rate2: float = 0.6,
                               power1: float = 1.0, power2: float = 0.45,
                               latency_weight: float = 2.0
                               ) -> HeterogeneousInstance:
    """Two-type cost model: fast/hungry type 1 vs slow/frugal type 2.

    ``f_t(x1, x2) = power1 x1 + power2 x2 + latency_weight * load_t *
    delay(rho)`` with ``rho = load_t / (rate1 x1 + rate2 x2)`` and the
    capped ``1/(1-rho)`` inflation of the simulator bridge.
    """
    loads = np.asarray(loads, dtype=np.float64)
    if np.any(loads < 0):
        raise ValueError("loads must be non-negative")
    cap = 10.0
    x1 = np.arange(m1 + 1, dtype=np.float64)[:, None]
    x2 = np.arange(m2 + 1, dtype=np.float64)[None, :]
    capacity = rate1 * x1 + rate2 * x2
    energy = power1 * x1 + power2 * x2
    T = loads.shape[0]
    F = np.empty((T, m1 + 1, m2 + 1), dtype=np.float64)
    for t in range(T):
        lam = loads[t]
        with np.errstate(divide="ignore"):
            rho = np.where(capacity > 0, lam / np.maximum(capacity, 1e-12),
                           np.inf)
        delay = np.where(rho < 1.0, 1.0 / np.maximum(1.0 - rho, 1.0 / cap),
                         cap)
        delay = np.minimum(delay, cap)
        latency = lam * delay
        if lam == 0:
            latency = np.zeros_like(capacity)
        F[t] = energy + latency_weight * latency
    return HeterogeneousInstance(beta1=beta1, beta2=beta2, F=F)


def hetero_cost(instance: HeterogeneousInstance, X1, X2) -> float:
    """Objective value of a two-type schedule (x_0 = 0 in both types)."""
    X1 = np.asarray(X1, dtype=np.int64)
    X2 = np.asarray(X2, dtype=np.int64)
    T = instance.T
    if X1.shape != (T,) or X2.shape != (T,):
        raise ValueError(f"schedules must have shape ({T},)")
    if (X1.min(initial=0) < 0 or X2.min(initial=0) < 0
            or X1.max(initial=0) > instance.m1
            or X2.max(initial=0) > instance.m2):
        raise ValueError("schedule leaves the state box")
    op = float(instance.F[np.arange(T), X1, X2].sum())
    d1 = np.diff(np.concatenate([[0], X1]))
    d2 = np.diff(np.concatenate([[0], X2]))
    sw = (instance.beta1 * float(np.maximum(d1, 0).sum())
          + instance.beta2 * float(np.maximum(d2, 0).sum()))
    return op + sw


def _relax_axis(D: np.ndarray, beta: float, axis: int) -> np.ndarray:
    """1-D switching relaxation along one axis of the value table:
    ``out[v] = min_u D[u] + beta (v - u)^+`` applied along ``axis``."""
    Dm = np.moveaxis(D, axis, -1)
    n = Dm.shape[-1]
    states = np.arange(n, dtype=np.float64)
    up = beta * states + np.minimum.accumulate(Dm - beta * states, axis=-1)
    down = np.minimum.accumulate(Dm[..., ::-1], axis=-1)[..., ::-1]
    out = np.minimum(up, down)
    return np.moveaxis(out, -1, axis)


def solve_dp_hetero(instance: HeterogeneousInstance):
    """Exact optimal two-type schedule via the factorized product DP.

    Returns ``(X1, X2, cost)``.  Per step: relax the switching cost along
    each axis in turn (valid because the switching cost is separable and
    each relaxation is a min-convolution with a 1-D kernel), then add the
    operating-cost slice.
    """
    T, m1, m2 = instance.T, instance.m1, instance.m2
    if T == 0:
        z = np.zeros(0, dtype=np.int64)
        return z, z, 0.0
    s1 = np.arange(m1 + 1, dtype=np.float64)[:, None]
    s2 = np.arange(m2 + 1, dtype=np.float64)[None, :]
    Ds = np.empty((T, m1 + 1, m2 + 1), dtype=np.float64)
    Ds[0] = instance.F[0] + instance.beta1 * s1 + instance.beta2 * s2
    for t in range(1, T):
        relaxed = _relax_axis(Ds[t - 1], instance.beta1, axis=0)
        relaxed = _relax_axis(relaxed, instance.beta2, axis=1)
        Ds[t] = instance.F[t] + relaxed
    # Backward reconstruction over the product space (small by design).
    X1 = np.empty(T, dtype=np.int64)
    X2 = np.empty(T, dtype=np.int64)
    flat = int(np.argmin(Ds[T - 1]))
    X1[T - 1], X2[T - 1] = np.unravel_index(flat, Ds[T - 1].shape)
    best = float(Ds[T - 1, X1[T - 1], X2[T - 1]])
    for t in range(T - 2, -1, -1):
        v1, v2 = X1[t + 1], X2[t + 1]
        trans = (Ds[t]
                 + instance.beta1 * np.maximum(v1 - s1, 0.0)
                 + instance.beta2 * np.maximum(v2 - s2, 0.0))
        flat = int(np.argmin(trans))
        X1[t], X2[t] = np.unravel_index(flat, trans.shape)
    return X1, X2, best


def solve_static_hetero(instance: HeterogeneousInstance):
    """Best constant pair ``(j1, j2)`` (static provisioning baseline)."""
    s1 = np.arange(instance.m1 + 1, dtype=np.float64)[:, None]
    s2 = np.arange(instance.m2 + 1, dtype=np.float64)[None, :]
    totals = (instance.F.sum(axis=0)
              + instance.beta1 * s1 + instance.beta2 * s2)
    flat = int(np.argmin(totals))
    j1, j2 = np.unravel_index(flat, totals.shape)
    T = instance.T
    return (np.full(T, j1, dtype=np.int64), np.full(T, j2, dtype=np.int64),
            float(totals[j1, j2]))


def solve_greedy_hetero(instance: HeterogeneousInstance):
    """Per-step minimizer of ``f_t`` (ignores switching) — strawman."""
    T = instance.T
    X1 = np.empty(T, dtype=np.int64)
    X2 = np.empty(T, dtype=np.int64)
    for t in range(T):
        flat = int(np.argmin(instance.F[t]))
        X1[t], X2[t] = np.unravel_index(flat, instance.F[t].shape)
    return X1, X2, hetero_cost(instance, X1, X2)
