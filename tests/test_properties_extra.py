"""Additional property-based tests for the newer subsystems."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.extensions.heterogeneous import (HeterogeneousInstance,
                                            _relax_axis, hetero_cost,
                                            solve_dp_hetero)
from repro.offline import solve_backward_lcp, solve_dp, solve_lp
from repro.simulator import DataCenter, ServerPowerModel
from tests.test_properties import convex_instances

common = settings(max_examples=40, deadline=None,
                  suppress_health_check=[HealthCheck.too_slow])


# ---------------------------------------------------------------------------
# LP comparator and backward recursion agree with the DP everywhere
# ---------------------------------------------------------------------------

@common
@given(convex_instances(max_T=6, max_m=5))
def test_lp_equals_dp(inst):
    assert solve_lp(inst).cost == pytest.approx(
        solve_dp(inst, return_schedule=False).cost, abs=1e-6)


@common
@given(convex_instances(max_T=8, max_m=6))
def test_backward_lcp_equals_dp(inst):
    assert solve_backward_lcp(inst).cost == pytest.approx(
        solve_dp(inst, return_schedule=False).cost)


# ---------------------------------------------------------------------------
# Simulator invariants
# ---------------------------------------------------------------------------

@st.composite
def sim_runs(draw):
    T = draw(st.integers(1, 30))
    m = draw(st.integers(1, 6))
    sched = draw(st.lists(st.integers(0, m), min_size=T, max_size=T))
    work = draw(st.lists(st.floats(0.0, 8.0, allow_nan=False),
                         min_size=T, max_size=T))
    setup = draw(st.integers(0, 2))
    return m, np.array(sched), np.array(work), setup


@common
@given(sim_runs())
def test_simulator_work_conservation(args):
    m, sched, work, setup = args
    dc = DataCenter(m, ServerPowerModel(setup_steps=setup))
    log = dc.run(sched, work)
    served = sum(s.served_work for s in log.steps)
    assert served + log.final_backlog == pytest.approx(float(work.sum()),
                                                       abs=1e-9)


@common
@given(sim_runs())
def test_simulator_metrics_nonnegative(args):
    m, sched, work, setup = args
    dc = DataCenter(m, ServerPowerModel(setup_steps=setup))
    log = dc.run(sched, work)
    for s in log.steps:
        assert s.energy >= 0 and s.latency >= 0
        assert s.transition_energy >= 0
        assert 0 <= s.utilization <= 1 + 1e-12
        assert 0 <= s.ready <= s.active <= m


@common
@given(sim_runs())
def test_simulator_backlog_monotone_in_capacity(args):
    """Running the same work with everything always on never leaves more
    backlog than the given schedule."""
    m, sched, work, setup = args
    a = DataCenter(m, ServerPowerModel(setup_steps=0)).run(sched, work)
    b = DataCenter(m, ServerPowerModel(setup_steps=0)).run(
        np.full(sched.shape, m), work)
    assert b.final_backlog <= a.final_backlog + 1e-9


# ---------------------------------------------------------------------------
# Heterogeneous DP
# ---------------------------------------------------------------------------

@st.composite
def hetero_instances(draw):
    T = draw(st.integers(1, 4))
    m1 = draw(st.integers(1, 3))
    m2 = draw(st.integers(1, 3))
    b1 = draw(st.floats(0.2, 3.0))
    b2 = draw(st.floats(0.2, 3.0))
    vals = draw(st.lists(st.floats(0.0, 9.0, allow_nan=False),
                         min_size=T * (m1 + 1) * (m2 + 1),
                         max_size=T * (m1 + 1) * (m2 + 1)))
    F = np.array(vals).reshape(T, m1 + 1, m2 + 1)
    return HeterogeneousInstance(beta1=float(b1), beta2=float(b2), F=F)


@common
@given(hetero_instances())
def test_hetero_dp_cost_is_achieved(inst):
    X1, X2, c = solve_dp_hetero(inst)
    assert hetero_cost(inst, X1, X2) == pytest.approx(c)


@common
@given(hetero_instances(), st.randoms(use_true_random=False))
def test_hetero_dp_never_beaten_by_random_schedules(inst, rnd):
    _, _, c = solve_dp_hetero(inst)
    for _ in range(10):
        X1 = np.array([rnd.randint(0, inst.m1) for _ in range(inst.T)])
        X2 = np.array([rnd.randint(0, inst.m2) for _ in range(inst.T)])
        assert hetero_cost(inst, X1, X2) >= c - 1e-9


@common
@given(st.integers(2, 6), st.integers(2, 6), st.floats(0.2, 3.0),
       st.floats(0.2, 3.0), st.randoms(use_true_random=False))
def test_hetero_relaxation_matches_naive(n1, n2, b1, b2, rnd):
    D = np.array([[rnd.uniform(0, 10) for _ in range(n2)]
                  for _ in range(n1)])
    fast = _relax_axis(_relax_axis(D, b1, 0), b2, 1)
    for v1 in range(n1):
        for v2 in range(n2):
            best = min(D[u1, u2] + b1 * max(v1 - u1, 0)
                       + b2 * max(v2 - u2, 0)
                       for u1 in range(n1) for u2 in range(n2))
            assert fast[v1, v2] == pytest.approx(best)
