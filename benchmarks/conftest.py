"""Shared infrastructure for the experiment benchmarks (E1–E12).

Every benchmark both *times* a representative kernel (pytest-benchmark)
and *regenerates the paper-shaped artifact* — a table or series — which
is printed and persisted under ``benchmarks/results/`` so EXPERIMENTS.md
can quote it.  Shape assertions (who wins, where curves converge) are
part of the benchmarks: a silent regression in a reproduced result fails
the bench run.
"""

from __future__ import annotations

import pathlib
import sys

import numpy as np
import pytest

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))

from repro import Instance  # noqa: E402
from repro.analysis import format_table  # noqa: E402

RESULTS_DIR = pathlib.Path(__file__).resolve().parent / "results"


def record(name: str, rows, columns=None, title: str | None = None) -> str:
    """Render, print and persist an experiment table."""
    RESULTS_DIR.mkdir(exist_ok=True)
    text = format_table(rows, columns, title=title or name)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print("\n" + text)
    return text


def random_convex_instance(rng: np.random.Generator, T: int, m: int,
                           beta: float, scale: float = 5.0) -> Instance:
    """Same generator as the test suite's conftest (duplicated here so the
    benchmarks are runnable standalone)."""
    rows = np.empty((T, m + 1))
    for t in range(T):
        slopes = np.sort(rng.uniform(-scale, scale, m))
        vals = np.concatenate([[0.0], np.cumsum(slopes)])
        vals -= vals.min()
        vals += rng.uniform(0, scale / 5)
        rows[t] = vals
    return Instance(beta=beta, F=rows)


@pytest.fixture
def rng():
    return np.random.default_rng(2018)


def trace_suite(T: int = 168, seed: int = 0):
    """The workload families used by the online-algorithm experiments."""
    from repro.workloads import (bursty_loads, capacity_for, diurnal_loads,
                                 hotmail_like_loads, instance_from_loads,
                                 msr_like_loads, onoff_loads)

    rng = np.random.default_rng(seed)
    suites = []
    for name, loads in [
        ("diurnal", diurnal_loads(T, peak=24.0, rng=rng)),
        ("msr-like", msr_like_loads(T, peak=24.0, rng=rng)),
        ("hotmail-like", hotmail_like_loads(T, peak=24.0, rng=rng)),
        ("bursty", bursty_loads(T, peak=24.0, rng=rng)),
        ("onoff", onoff_loads(T, peak=24.0, rng=rng)),
    ]:
        m = capacity_for(loads)
        inst = instance_from_loads(loads, m=m, beta=4.0, delay_weight=10.0)
        suites.append((name, inst))
    return suites
