"""Tests for instance transforms (repro.core.transforms): the Section 2.2
padding, the Phi/Psi scaling (Lemma 1), and the continuous extension."""

import numpy as np
import pytest

from repro.core.instance import Instance
from repro.core.schedule import cost
from repro.core.transforms import (continuous_extension, lift_schedule,
                                   next_power_of_two, pad_to_power_of_two,
                                   padded_cost, project_schedule, scale_down)
from repro.offline import solve_dp
from tests.conftest import random_convex_instance


class TestNextPowerOfTwo:
    @pytest.mark.parametrize("m,expected", [
        (1, 1), (2, 2), (3, 4), (4, 4), (5, 8), (7, 8), (8, 8), (9, 16),
        (100, 128), (1023, 1024), (1024, 1024),
    ])
    def test_values(self, m, expected):
        assert next_power_of_two(m) == expected

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            next_power_of_two(0)


class TestPadding:
    def test_noop_for_power_of_two(self):
        inst = Instance(beta=1.0, F=np.zeros((3, 5)))  # m = 4
        assert pad_to_power_of_two(inst) is inst

    def test_padded_shape(self):
        inst = Instance(beta=1.0, F=np.ones((3, 6)))  # m = 5 -> 8
        padded = pad_to_power_of_two(inst)
        assert padded.m == 8

    def test_padded_rows_remain_convex(self):
        rng = np.random.default_rng(0)
        for _ in range(10):
            m = int(rng.integers(1, 12))
            inst = random_convex_instance(rng, 4, m, 1.0)
            padded = pad_to_power_of_two(inst, eps=0.5)
            # Instance construction re-validates convexity; also check the
            # original costs are untouched.
            np.testing.assert_allclose(padded.F[:, :m + 1], inst.F)

    def test_padding_formula(self):
        inst = Instance(beta=1.0,
                        F=np.array([[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]]))  # m=5
        padded = pad_to_power_of_two(inst, eps=0.25)  # m' = 8
        # f'(x) = f(m) + (x - m)(f(m) + eps) for x > m (convex extension;
        # see the padded_cost docstring for the deviation note).
        np.testing.assert_allclose(
            padded.F[0],
            [1, 2, 3, 4, 5, 6, 6 + 6.25, 6 + 2 * 6.25, 6 + 3 * 6.25])

    def test_paper_literal_padding_is_nonconvex(self):
        """Documents why the implementation deviates: the paper's displayed
        x*(f(m)+eps) padding violates convexity at the junction for
        m >= 2."""
        from repro.core.costs import is_convex_table
        f = np.array([1.0, 2.0, 3.0])  # m = 2, f(m) = 3
        eps = 0.25
        literal = np.concatenate([f, [3 * (3 + eps), 4 * (3 + eps)]])
        assert not is_convex_table(literal)

    def test_padded_states_never_optimal(self):
        rng = np.random.default_rng(5)
        for _ in range(10):
            m = int(rng.integers(1, 7))
            inst = random_convex_instance(rng, 5, m, 1.3)
            padded = pad_to_power_of_two(inst, eps=1.0)
            res = solve_dp(padded)
            assert np.all(res.schedule <= m)
            assert res.cost == pytest.approx(solve_dp(inst).cost)

    def test_rejects_nonpositive_eps(self):
        inst = Instance(beta=1.0, F=np.zeros((1, 4)))
        with pytest.raises(ValueError):
            pad_to_power_of_two(inst, eps=0.0)

    def test_lazy_padded_cost_matches_materialized(self):
        rng = np.random.default_rng(9)
        inst = random_convex_instance(rng, 4, 5, 1.0)
        padded = pad_to_power_of_two(inst, eps=0.7)
        states = np.array([0, 3, 5, 6, 8])
        for t in (1, 4):
            lazy = padded_cost(inst.F, t, states, 0.7)
            np.testing.assert_allclose(lazy, padded.F[t - 1, states])


class TestScaleDown:
    def test_requires_divisibility(self):
        inst = Instance(beta=1.0, F=np.zeros((2, 7)))  # m = 6
        with pytest.raises(ValueError):
            scale_down(inst, 2)

    def test_identity_for_l0(self):
        inst = Instance(beta=1.0, F=np.zeros((2, 5)))
        assert scale_down(inst, 0) is inst

    def test_shapes_and_beta(self):
        inst = Instance(beta=1.5, F=np.zeros((3, 9)))  # m = 8
        scaled = scale_down(inst, 2)
        assert scaled.m == 2
        assert scaled.beta == 6.0

    def test_cost_preservation(self):
        """Psi preserves cost: C_Q(X) = C_{Psi_l(Q)}(X / 2^l)."""
        rng = np.random.default_rng(21)
        for _ in range(10):
            inst = random_convex_instance(rng, 6, 8, float(rng.uniform(0.5, 3)))
            scaled = scale_down(inst, 1)
            Xs = rng.integers(0, 5, size=6)  # schedule of the scaled inst.
            X = lift_schedule(Xs, 1)
            assert cost(inst, X) == pytest.approx(cost(scaled, Xs))

    def test_lemma1_composition(self):
        """Phi_{k-l}(Psi_l(P_l)) = Psi_l(P_k): scaling twice equals scaling
        once by the sum (the testable form of Lemma 1)."""
        rng = np.random.default_rng(22)
        inst = random_convex_instance(rng, 5, 16, 1.0)
        once = scale_down(inst, 3)
        twice = scale_down(scale_down(inst, 1), 2)
        assert once.beta == pytest.approx(twice.beta)
        np.testing.assert_allclose(once.F, twice.F)

    def test_optimal_cost_of_scaled_equals_restricted_dp(self):
        """Solving Psi_k(P_k) solves P_k (states = multiples of 2^k)."""
        rng = np.random.default_rng(23)
        inst = random_convex_instance(rng, 5, 8, 2.0)
        scaled = scale_down(inst, 1)
        res = solve_dp(scaled)
        X = lift_schedule(res.schedule, 1)
        assert cost(inst, X) == pytest.approx(res.cost)
        # No schedule on even states beats it (exhaustive over even states).
        import itertools
        best = min(cost(inst, np.array(Z))
                   for Z in itertools.product([0, 2, 4, 6, 8], repeat=5))
        assert res.cost == pytest.approx(best)

    def test_project_schedule(self):
        np.testing.assert_array_equal(project_schedule([0, 4, 2], 1),
                                      [0, 2, 1])
        with pytest.raises(ValueError):
            project_schedule([1, 2], 1)


class TestContinuousExtension:
    def test_matches_table_at_integers(self):
        F = np.array([[3.0, 1.0, 0.0, 2.0]])
        fbar = continuous_extension(F)
        for j, v in enumerate(F[0]):
            assert fbar(1, j) == pytest.approx(v)

    def test_linear_interpolation(self):
        F = np.array([[3.0, 1.0, 0.0, 2.0]])
        fbar = continuous_extension(F)
        assert fbar(1, 0.25) == pytest.approx(2.5)
        assert fbar(1, 2.5) == pytest.approx(1.0)

    def test_vectorized(self):
        F = np.array([[0.0, 2.0]])
        fbar = continuous_extension(F)
        np.testing.assert_allclose(fbar(1, np.array([0.0, 0.5, 1.0])),
                                   [0.0, 1.0, 2.0])

    def test_bounds_enforced(self):
        fbar = continuous_extension(np.array([[0.0, 1.0]]))
        with pytest.raises(ValueError):
            fbar(1, 1.5)
        with pytest.raises(IndexError):
            fbar(2, 0.5)

    def test_convexity_of_extension(self):
        """eq. (3): linear interpolation of a convex table is convex."""
        rng = np.random.default_rng(31)
        inst = random_convex_instance(rng, 1, 9, 1.0)
        fbar = continuous_extension(inst.F)
        xs = np.linspace(0, 9, 37)
        vals = fbar(1, xs)
        d2 = np.diff(vals, n=2)
        assert np.all(d2 >= -1e-9)
