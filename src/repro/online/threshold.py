"""2-competitive fractional online algorithm (threshold "charge-half" rule).

This is the repository's proof-carrying substitute for the algorithm of
Bansal et al. [7] that Section 4 of the paper uses as a black box (see
DESIGN.md §4/§5 and docs/ANALYSIS.md for the substitution rationale and
the full competitive analysis).

State: a threshold profile ``q in [0,1]^m`` with ``q_s`` interpreted as
the probability that at least ``s`` servers are active; the fractional
point is ``x-bar_t = sum_s q_s``.  On arrival of ``f_t`` with increments
``g_s = f_t(s) - f_t(s-1)`` the rule is

``q_s <- clamp_[0,1]( q_s - g_s / beta )``.

Interpretation: threshold ``s`` plays a two-state server-on/server-off
game; when the "on" side is charged (``g_s > 0``) mass moves off, and
vice versa, at rate ``1/beta`` per unit of charged cost — exactly the
``eps/2`` steps of the paper's algorithm B (Section 5.2.1) when
``beta = 2`` and the hinge functions ``phi_0/phi_1`` arrive.  Convexity
of ``f_t`` makes ``g`` nondecreasing, which preserves the monotonicity
``q_1 >= q_2 >= ...`` (a valid threshold profile).  A per-threshold
potential argument (docs/ANALYSIS.md) shows the induced fractional
schedule costs at most twice the offline optimum; the randomized rounding
of Section 4 then converts it into an integral 2-competitive algorithm.
"""

from __future__ import annotations

import numpy as np

from .base import OnlineAlgorithm

__all__ = ["ThresholdFractional"]


class ThresholdFractional(OnlineAlgorithm):
    """Fractional 2-competitive online algorithm (threshold rule)."""

    fractional = True
    name = "threshold"

    def __init__(self, *, validate: bool = False):
        #: assert the monotone-threshold invariant after every step
        self._validate = validate

    def reset(self, m: int, beta: float) -> None:
        self.m = m
        self.beta = beta
        self._q = np.zeros(m, dtype=np.float64)
        self._set_state(0.0)

    @property
    def thresholds(self) -> np.ndarray:
        """Current threshold profile ``q`` (copy)."""
        return self._q.copy()

    def step(self, f_row: np.ndarray, future: np.ndarray | None = None) -> float:
        g = np.diff(np.asarray(f_row, dtype=np.float64))
        self._q -= g / self.beta
        np.clip(self._q, 0.0, 1.0, out=self._q)
        if self._validate and self._q.size > 1:
            if np.any(np.diff(self._q) > 1e-9):
                raise AssertionError("threshold profile lost monotonicity")
        x = float(self._q.sum())
        self._set_state(x)
        return x

    def run_table(self, F: np.ndarray):
        """Whole-trajectory threshold rule.

        The per-threshold drifts ``g_s / beta`` are one table-wide
        ``diff`` + divide; the clamped accumulation across time is
        inherently sequential, but shrinks to three in-place array
        calls per step — elementwise the same operations (and so the
        same floats) as :meth:`step`.  Declines under ``validate=True``
        to keep the per-step monotonicity assertion.
        """
        if self._validate:
            return None
        F = np.asarray(F, dtype=np.float64)
        T = F.shape[0]
        G = np.diff(F, axis=1)
        np.divide(G, self.beta, out=G)
        drifts = list(G)
        q = self._q
        out = np.empty(T, dtype=np.float64)
        # clip(q, 0, 1) == minimum(maximum(q, 0), 1) exactly (pure
        # selections, no rounding), and np.add.reduce is the very
        # reduction ndarray.sum dispatches to — raw-ufunc spellings of
        # the same ops, skipping the dispatch wrappers in this loop
        subtract, vmax, vmin = np.subtract, np.maximum, np.minimum
        total = np.add.reduce
        for t in range(T):
            subtract(q, drifts[t], out=q)
            vmax(q, 0.0, out=q)
            vmin(q, 1.0, out=q)
            out[t] = total(q)
        if T:
            self._set_state(float(out[-1]))
        return out
