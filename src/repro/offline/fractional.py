"""Optimal solutions of the continuous extension ``P-bar`` and Lemma 4.

The continuous extension (eq. (3)) interpolates every ``f_t`` linearly
between integer states, so ``C-bar`` is a convex piecewise-linear
functional whose breakpoints lie on integer schedules.  Consequently the
optimal *fractional* cost equals the optimal *integral* cost, and any
integral optimum is also a fractional optimum.  Lemma 4 states the
converse direction used throughout the paper: flooring or ceiling an
optimal fractional schedule yields an optimal (integral) schedule.

This module provides:

* :func:`solve_fractional` — an optimal fractional schedule and the
  optimal cost (returned as the canonical integral optimum).
* :func:`make_fractional_optimum` — a *strictly fractional* optimal
  schedule obtained by blending two distinct integral optima (convexity of
  ``C-bar`` makes any convex combination of optima optimal); returns
  ``None`` when the reconstruction plateau is trivial.  Used by the
  Lemma 4 tests.
* :func:`floor_schedule` / :func:`ceil_schedule` — the Lemma 4 roundings.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..core.instance import Instance
from ..core.schedule import cost
from .dp import solve_dp

__all__ = [
    "FractionalResult",
    "solve_fractional",
    "make_fractional_optimum",
    "floor_schedule",
    "ceil_schedule",
]


@dataclasses.dataclass(frozen=True)
class FractionalResult:
    """Optimal fractional schedule and cost for ``P-bar``."""

    schedule: np.ndarray
    cost: float

    def __post_init__(self):
        s = np.ascontiguousarray(np.asarray(self.schedule, dtype=np.float64))
        s.setflags(write=False)
        object.__setattr__(self, "schedule", s)


def solve_fractional(instance: Instance) -> FractionalResult:
    """An optimal schedule of the continuous extension ``P-bar``.

    Returns the canonical integral optimum viewed as a fractional
    schedule; its cost is the fractional optimum because ``C-bar`` is
    piecewise linear with integral breakpoints.
    """
    res = solve_dp(instance)
    return FractionalResult(schedule=res.schedule.astype(np.float64),
                            cost=res.cost)


def make_fractional_optimum(instance: Instance,
                            weight: float = 0.5) -> np.ndarray | None:
    """A strictly fractional optimal schedule of ``P-bar``, if one exists.

    Blends the smallest-tie and largest-tie integral optima; since
    ``C-bar`` is convex, the blend is optimal.  Returns ``None`` when both
    reconstructions coincide (the plateau visible to the DP is trivial).
    """
    if not 0.0 < weight < 1.0:
        raise ValueError("weight must be strictly between 0 and 1")
    lo = solve_dp(instance, tie="smallest").schedule
    hi = solve_dp(instance, tie="largest").schedule
    if np.array_equal(lo, hi):
        return None
    blend = (1.0 - weight) * lo + weight * hi
    return blend


def floor_schedule(X) -> np.ndarray:
    """Lemma 4 rounding ``floor(X*)`` (entrywise)."""
    return np.floor(np.asarray(X, dtype=np.float64) + 1e-12).astype(np.int64)


def ceil_schedule(X) -> np.ndarray:
    """Lemma 4 rounding ``ceil(X*)`` (entrywise)."""
    return np.ceil(np.asarray(X, dtype=np.float64) - 1e-12).astype(np.int64)
