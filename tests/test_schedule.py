"""Tests for cost functionals (repro.core.schedule) — eqs. (1), (11), (12),
(14) and the Section 5 symmetric convention."""

import numpy as np
import pytest

from repro.core.instance import Instance
from repro.core.schedule import (cost, cost_breakdown, cost_L, cost_U,
                                 interp_operating, operating_cost,
                                 switching_cost_down, switching_cost_up,
                                 symmetric_cost, validate_schedule)
from tests.conftest import random_convex_instance


@pytest.fixture
def inst():
    F = np.array([
        [2.0, 1.0, 0.5],
        [0.0, 1.0, 2.0],
        [3.0, 1.0, 0.0],
    ])
    return Instance(beta=2.0, F=F)


class TestValidate:
    def test_accepts_valid(self, inst):
        out = validate_schedule(inst, [0, 1, 2])
        assert out.dtype == np.float64

    def test_rejects_wrong_length(self, inst):
        with pytest.raises(ValueError, match="shape"):
            validate_schedule(inst, [0, 1])

    def test_rejects_out_of_range(self, inst):
        with pytest.raises(ValueError, match="state range"):
            validate_schedule(inst, [0, 1, 3])
        with pytest.raises(ValueError, match="state range"):
            validate_schedule(inst, [-1, 1, 2])

    def test_rejects_fractional_when_integral(self, inst):
        with pytest.raises(ValueError, match="integral"):
            validate_schedule(inst, [0.5, 1, 2])

    def test_accepts_fractional_when_allowed(self, inst):
        validate_schedule(inst, [0.5, 1, 2], integral=False)


class TestOperating:
    def test_integral_values(self, inst):
        # f1(1) + f2(0) + f3(2) = 1 + 0 + 0.
        assert operating_cost(inst, [1, 0, 2]) == pytest.approx(1.0)

    def test_prefix(self, inst):
        assert operating_cost(inst, [1, 0, 2], upto=2) == pytest.approx(1.0)
        assert operating_cost(inst, [1, 0, 2], upto=1) == pytest.approx(1.0)

    def test_fractional_interpolation(self, inst):
        # f1(0.5) = 1.5 by eq. (3).
        assert operating_cost(inst, [0.5, 0, 0]) == pytest.approx(1.5 + 0 + 3)

    def test_interp_operating_matches_rows(self, inst):
        per = interp_operating(inst.F, np.array([1.0, 0.0, 2.0]))
        np.testing.assert_allclose(per, [1.0, 0.0, 0.0])


class TestSwitching:
    def test_up_counts_increases_from_zero(self, inst):
        # 0 -> 2 -> 1 -> 2: ups are 2 and 1.
        assert switching_cost_up(inst, [2, 1, 2]) == pytest.approx(2.0 * 3)

    def test_down_counts_decreases(self, inst):
        assert switching_cost_down(inst, [2, 1, 2]) == pytest.approx(2.0 * 1)

    def test_eq14_identity(self, inst):
        # S^L_tau = S^U_tau + beta x_tau for every prefix.
        X = np.array([2, 0, 1])
        for tau in (1, 2, 3):
            sl = switching_cost_up(inst, X, upto=tau)
            su = switching_cost_down(inst, X, upto=tau)
            assert sl == pytest.approx(su + inst.beta * X[tau - 1])

    def test_eq14_identity_random(self):
        rng = np.random.default_rng(3)
        for _ in range(20):
            inst = random_convex_instance(rng, int(rng.integers(1, 9)),
                                          int(rng.integers(1, 6)), 1.7)
            X = rng.integers(0, inst.m + 1, size=inst.T)
            for tau in range(1, inst.T + 1):
                sl = switching_cost_up(inst, X, upto=tau)
                su = switching_cost_down(inst, X, upto=tau)
                assert sl == pytest.approx(su + inst.beta * X[tau - 1])


class TestTotalCost:
    def test_eq1(self, inst):
        # X = (1, 1, 2): op = 1 + 1 + 0, switch = beta*(1 + 0 + 1).
        assert cost(inst, [1, 1, 2]) == pytest.approx(2.0 + 2.0 * 2)

    def test_cost_L_at_T_equals_cost(self, inst):
        for X in ([0, 0, 0], [2, 1, 0], [1, 2, 1]):
            assert cost_L(inst, X) == pytest.approx(cost(inst, X))

    def test_cost_U_identity(self, inst):
        X = [1, 2, 1]
        for tau in (1, 2, 3):
            assert cost_L(inst, X, tau) == pytest.approx(
                cost_U(inst, X, tau) + inst.beta * X[tau - 1])

    def test_symmetric_equals_eq1_for_closed_schedules(self):
        rng = np.random.default_rng(11)
        for _ in range(25):
            inst = random_convex_instance(rng, int(rng.integers(1, 10)),
                                          int(rng.integers(1, 7)),
                                          float(rng.uniform(0.5, 4)))
            X = rng.integers(0, inst.m + 1, size=inst.T)
            assert symmetric_cost(inst, X) == pytest.approx(cost(inst, X))

    def test_breakdown_sums(self, inst):
        b = cost_breakdown(inst, [1, 1, 2])
        assert b["total"] == pytest.approx(b["operating"] + b["switching"])
        assert b["peak"] == 2.0
        assert b["mean"] == pytest.approx(4 / 3)

    def test_zero_schedule_costs_operating_only(self, inst):
        assert cost(inst, [0, 0, 0]) == pytest.approx(2.0 + 0.0 + 3.0)

    def test_fractional_cost(self, inst):
        c = cost(inst, [0.5, 0.5, 0.5], integral=False)
        op = 1.5 + 0.5 + 2.0
        sw = 2.0 * 0.5
        assert c == pytest.approx(op + sw)
