#!/usr/bin/env python
"""Capacity planning in the restricted model (eq. (2)).

Uses Lin et al.'s restricted formulation directly: a single per-server
utilization cost f(z), a load trace lambda_t, and the hard feasibility
constraint x_t >= lambda_t.  Shows the encoding into the general model,
solves it optimally, and explores how the switching cost beta moves the
operating point between "track the load" and "provision flat".

Run:  python examples/capacity_planning.py
"""

import numpy as np

from repro import LCP, run_online
from repro.analysis import format_table, schedule_stats
from repro.offline import solve_dp
from repro.workloads import diurnal_loads, restricted_from_loads


def main() -> None:
    rng = np.random.default_rng(3)
    loads = diurnal_loads(48, peak=10.0, base_frac=0.25, rng=rng)
    m = 14

    print("restricted model: f(z) = 1 + z^2 per server, x_t >= lambda_t\n")
    rows = []
    for beta in (0.5, 2.0, 8.0, 32.0):
        ri = restricted_from_loads(loads, m=m, beta=beta)
        inst = ri.to_general()
        res = solve_dp(inst)
        assert ri.is_feasible(res.schedule)
        stats = schedule_stats(inst, res.schedule)
        lcp = run_online(inst, LCP())
        assert ri.is_feasible(lcp.schedule)
        rows.append({
            "beta": beta,
            "opt_cost": res.cost,
            "changes": stats["changes"],
            "peak": stats["peak"],
            "mean": round(float(np.mean(res.schedule)), 2),
            "lcp_over_opt": lcp.cost / res.cost,
        })
    print(format_table(rows, title="optimal schedules vs switching cost"))
    print("\nAs beta grows the optimal schedule freezes (fewer changes,"
          "\nhigher mean level): switching becomes the dominant expense —")
    print("exactly the trade-off eq. (1) formalizes.")

    # Show one schedule against its load trace.
    ri = restricted_from_loads(loads, m=m, beta=2.0)
    res = solve_dp(ri.to_general())
    print("\n t | load  | optimal x_t")
    for t in range(0, 48, 4):
        bar = "#" * int(res.schedule[t])
        print(f"{t:3d}| {loads[t]:5.1f} | {res.schedule[t]:3d} {bar}")


if __name__ == "__main__":
    main()
