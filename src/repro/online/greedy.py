"""Naive online baselines and the static-provisioning reference.

These are the strawmen the paper's introduction argues against:

* :class:`FollowTheMinimizer` — jump to the arriving function's minimizer
  every step (no laziness; pays unbounded switching on oscillating load).
* :class:`NeverSwitchOn` / peak provisioning via :func:`solve_static` —
  the "no right-sizing" regime: keep a fixed number of servers active for
  the whole horizon (the best fixed number, chosen offline).

The case-study benchmark (E11) measures the savings of LCP and the
optimal offline schedule against these baselines across traces and
switching costs, reproducing the shape of Lin et al.'s evaluation.
"""

from __future__ import annotations

import numpy as np

from .._util import argmin_first
from ..core.instance import Instance
from ..offline.result import OfflineResult
from .base import OnlineAlgorithm

__all__ = ["FollowTheMinimizer", "NeverSwitchOn", "solve_static"]


class FollowTheMinimizer(OnlineAlgorithm):
    """Jump to the (smallest) minimizer of every arriving function."""

    fractional = False
    name = "follow-min"

    def reset(self, m: int, beta: float) -> None:
        self._set_state(0)

    def step(self, f_row: np.ndarray, future: np.ndarray | None = None) -> int:
        x = argmin_first(np.asarray(f_row, dtype=np.float64))
        self._set_state(x)
        return x

    def run_table(self, F: np.ndarray):
        """Whole-trajectory minimizer chase: one table-wide ``argmin``
        (NumPy's row argmin picks the first minimizer, exactly
        :func:`~repro._util.argmin_first`)."""
        F = np.asarray(F, dtype=np.float64)
        xs = F.argmin(axis=1).astype(np.int64, copy=False)
        if xs.size:
            self._set_state(int(xs[-1]))
        return xs


class NeverSwitchOn(OnlineAlgorithm):
    """Power everything up at t=1 and never resize (peak provisioning)."""

    fractional = False
    name = "always-max"

    def reset(self, m: int, beta: float) -> None:
        self._m = m
        self._set_state(0)

    def step(self, f_row: np.ndarray, future: np.ndarray | None = None) -> int:
        self._set_state(self._m)
        return self._m

    def run_table(self, F: np.ndarray):
        """Whole-trajectory peak provisioning: the constant ``m``."""
        xs = np.full(np.asarray(F).shape[0], self._m, dtype=np.int64)
        if xs.size:
            self._set_state(self._m)
        return xs


def solve_static(instance: Instance) -> OfflineResult:
    """Best *constant* schedule ``x_t = j`` (offline reference).

    Static provisioning pays ``beta*j`` once plus the summed operating
    cost of level ``j``; the savings of right-sizing are measured against
    this baseline in the case-study benchmarks.
    """
    totals = instance.F.sum(axis=0) + instance.beta * np.arange(
        instance.m + 1, dtype=np.float64)
    j = int(np.argmin(totals))
    schedule = np.full(instance.T, j, dtype=np.int64)
    return OfflineResult(schedule=schedule, cost=float(totals[j]),
                         method="static")
