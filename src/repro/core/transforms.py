"""Instance transformations from Section 2 of the paper.

* ``pad_to_power_of_two`` — the Section 2.2 padding ``P -> P'`` that
  extends ``m`` to the next power of two with the adverse convex extension
  ``f'_t(x) = x * (f_t(m) + eps)`` for ``x > m``.

* ``scale_down`` — the composition ``Psi_l(Phi_l(P))``: keep only states
  that are multiples of ``2^l`` and relabel them ``0..m/2^l``; switching
  cost becomes ``beta * 2^l``.  Schedules map back via ``lift_schedule``
  with *identical cost* (the paper's Psi preserves cost), which is what
  Lemmas 1 and 5 manipulate.

* ``continuous_extension`` — the piecewise-linear extension ``f-bar`` of
  eq. (3) as a callable matrix evaluator.
"""

from __future__ import annotations


import numpy as np

from .instance import Instance

__all__ = [
    "next_power_of_two",
    "padded_cost",
    "pad_to_power_of_two",
    "scale_down",
    "lift_schedule",
    "project_schedule",
    "continuous_extension",
]


def next_power_of_two(m: int) -> int:
    """Smallest power of two ``>= m`` (``m >= 1``)."""
    if m < 1:
        raise ValueError("m must be at least 1")
    return 1 << (m - 1).bit_length()


def padded_cost(F: np.ndarray, t: int, states: np.ndarray,
                eps: float) -> np.ndarray:
    """Evaluate the padded cost ``f'_t`` of Section 2.2 on ``states``.

    For ``j <= m`` this is ``F[t-1, j]``; for ``j > m`` the function is
    extended linearly from ``(m, f_t(m))`` with slope ``f_t(m) + eps``:
    ``f'_t(j) = f_t(m) + (j - m)(f_t(m) + eps)``.

    Note (deviation from the paper's displayed formula): the paper writes
    ``f'_t(x) = x (f_t(m) + eps)``, but that expression is not convex at
    the junction for ``m >= 2`` — its slope jumps to ``m f_t(m) + (m+1)
    eps`` on ``[m, m+1]`` and falls back to ``f_t(m) + eps`` afterwards.
    The paper's own justification ("the greatest slope of ``f_t`` is
    ``f_t(m) - f_t(m-1) <= f_t(m)``") is exactly the argument for the
    linear extension used here: the junction slope ``f_t(m) + eps``
    weakly exceeds every slope of ``f_t`` and stays constant beyond, so
    ``f'_t`` is convex, and it is strictly positive, so padded states are
    strictly adverse and never optimal.

    ``t`` is 1-based.  ``states`` may exceed the padded maximum; callers
    are responsible for clipping to the padded state range.
    """
    m = F.shape[1] - 1
    s = np.asarray(states, dtype=np.int64)
    inside = np.minimum(s, m)
    vals = F[t - 1, inside].astype(np.float64, copy=True)
    over = s > m
    if np.any(over):
        top = F[t - 1, m]
        vals[over] = top + (s[over] - m) * (top + eps)
    return vals


def pad_to_power_of_two(instance: Instance, eps: float = 1.0) -> Instance:
    """Materialize the padded instance ``P'`` of Section 2.2.

    Only intended for small ``m`` (tests and reference paths): the
    binary-search solver evaluates :func:`padded_cost` lazily instead of
    building the padded matrix.
    """
    if eps <= 0:
        raise ValueError("eps must be positive")
    m = instance.m
    m2 = next_power_of_two(max(m, 1))
    if m2 == m:
        return instance
    T = instance.T
    Fp = np.empty((T, m2 + 1), dtype=np.float64)
    Fp[:, :m + 1] = instance.F
    over = np.arange(1, m2 - m + 1, dtype=np.float64)
    top = instance.F[:, m][:, None]
    Fp[:, m + 1:] = top + over[None, :] * (top + eps)
    return Instance(beta=instance.beta, F=Fp)


def scale_down(instance: Instance, l: int) -> Instance:
    """``Psi_l(Phi_l(P))``: restrict to multiples of ``2^l`` and relabel.

    Requires ``2^l`` to divide ``m``.  The returned instance has
    ``m' = m / 2^l``, operating costs ``f'_t(i) = f_t(i * 2^l)`` (convex:
    a convex function sampled on an arithmetic progression is convex) and
    switching cost ``beta' = beta * 2^l``.  A schedule ``X'`` for the
    scaled instance corresponds to ``X = 2^l * X'`` with equal cost.
    """
    if l < 0:
        raise ValueError("l must be non-negative")
    if l == 0:
        return instance
    step = 1 << l
    if instance.m % step != 0:
        raise ValueError(f"2^l = {step} must divide m = {instance.m}")
    return Instance(beta=instance.beta * step, F=instance.F[:, ::step])


def lift_schedule(X, l: int) -> np.ndarray:
    """Map a schedule of ``scale_down(P, l)`` back to original states."""
    return np.asarray(X) * (1 << l)


def project_schedule(X, l: int) -> np.ndarray:
    """Map a schedule of ``P`` whose states are multiples of ``2^l`` to the
    scaled instance's states.  Raises if any state is not a multiple."""
    x = np.asarray(X, dtype=np.int64)
    step = 1 << l
    if np.any(x % step != 0):
        raise ValueError(f"schedule states must be multiples of {step}")
    return x // step


def continuous_extension(F: np.ndarray):
    """Return a vectorized evaluator ``fbar(t, x)`` of eq. (3).

    ``t`` is 1-based; ``x`` may be scalar or array in ``[0, m]``.  Values
    between integer states are linearly interpolated.
    """
    T, width = F.shape
    grid = np.arange(width, dtype=np.float64)

    def fbar(t: int, x):
        if not 1 <= t <= T:
            raise IndexError(f"t must be in 1..{T}")
        xs = np.asarray(x, dtype=np.float64)
        if np.any(xs < -1e-12) or np.any(xs > width - 1 + 1e-12):
            raise ValueError("x outside [0, m]")
        out = np.interp(xs, grid, F[t - 1])
        return float(out) if np.isscalar(x) else out

    return fbar
