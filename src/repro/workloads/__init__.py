"""Synthetic workloads and trace-to-instance builders."""

from .forecast import forecast_runner, noisy_future
from .synthetic import (bursty_loads, compose_loads, constant_loads,
                        diurnal_loads, hotmail_like_loads, msr_like_loads,
                        onoff_loads, peak_to_mean_ratio,
                        random_convex_instance, random_walk_loads,
                        regime_switching_loads, sawtooth_loads)
from .traces import (capacity_for, default_server_cost, instance_from_loads,
                     restricted_from_loads)

__all__ = [
    "bursty_loads", "compose_loads", "constant_loads", "diurnal_loads",
    "hotmail_like_loads", "msr_like_loads", "onoff_loads",
    "peak_to_mean_ratio", "random_convex_instance", "random_walk_loads",
    "regime_switching_loads", "sawtooth_loads",
    "capacity_for", "default_server_cost", "instance_from_loads",
    "restricted_from_loads",
    "forecast_runner", "noisy_future",
]
