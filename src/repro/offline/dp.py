"""Dynamic-programming offline solvers (the pseudo-polynomial baseline).

The paper observes (Section 2.1) that an optimal schedule is a shortest
path in the layered graph of Figure 1, computable in ``O(T m)`` time once
the linear structure of the switching cost is exploited:

``D_t(j) = f_t(j) + min( beta*j + min_{j'<=j} (D_{t-1}(j') - beta*j'),
                         min_{j'>=j} D_{t-1}(j') )``

The first argument covers powering **up** from a smaller state (paying
``beta`` per server), the second powering **down** (free).  Both inner
minima are prefix/suffix minima, so each layer costs ``O(m)`` vectorized
work.  This running time is *pseudo-polynomial* — the input encodes ``m``
in ``log m`` bits — which is exactly why the paper develops the
``O(T log m)`` binary-search algorithm in :mod:`repro.offline.binary_search`.

``solve_dp_quadratic`` is a deliberately naive ``O(T m^2)`` reference used
to cross-check the recurrence.
"""

from __future__ import annotations

import numpy as np

from .._util import argmin_first, argmin_last, prefix_min, suffix_min
from ..core.instance import Instance
from .result import OfflineResult

__all__ = ["solve_dp", "solve_dp_quadratic", "dp_value_table"]


def dp_value_table(instance: Instance) -> np.ndarray:
    """Forward DP value table ``D[t-1, j]`` = minimal cost of serving
    ``f_1..f_t`` and ending with ``x_t = j`` (switching charged on
    power-up, i.e. the ``hat-C^L_t`` work function of Section 3.2).

    Shape ``(T, m+1)``.  Row ``T-1`` minimized over ``j`` is the optimum of
    eq. (1) (the final power-down is free).
    """
    F = instance.F
    T, width = F.shape
    beta = instance.beta
    states = np.arange(width, dtype=np.float64)
    D = np.empty((T, width), dtype=np.float64)
    # x_0 = 0: powering up to j costs beta * j.
    D[0] = F[0] + beta * states
    for t in range(1, T):
        prev = D[t - 1]
        up = beta * states + prefix_min(prev - beta * states)
        down = suffix_min(prev)
        D[t] = F[t] + np.minimum(up, down)
    return D


def _reconstruct(instance: Instance, D: np.ndarray, tie: str) -> np.ndarray:
    """Backward path reconstruction from the DP value table.

    ``tie='smallest'`` prefers the smallest optimal state at every step
    (scanning ties from below), ``tie='largest'`` the largest.  Both yield
    optimal schedules; having both exposes the plateau structure that the
    fractional/rounding tests (Lemma 4) rely on.
    """
    T, width = D.shape
    beta = instance.beta
    states = np.arange(width, dtype=np.float64)
    pick = argmin_first if tie == "smallest" else argmin_last
    x = np.empty(T, dtype=np.int64)
    x[T - 1] = pick(D[T - 1])
    for t in range(T - 2, -1, -1):
        j = x[t + 1]
        # Cost of being at j' at time t and moving to j at time t+1,
        # excluding f_{t+1}(j) which is common to all choices.
        trans = D[t] + beta * np.maximum(j - states, 0.0)
        x[t] = pick(trans)
    return x


def solve_dp(instance: Instance, *, tie: str = "smallest",
             return_schedule: bool = True) -> OfflineResult:
    """Optimal offline schedule via the vectorized ``O(T m)`` DP.

    Parameters
    ----------
    tie:
        ``'smallest'`` or ``'largest'`` — which optimal state to prefer
        during path reconstruction.
    return_schedule:
        When false, only the optimal cost is computed using ``O(m)``
        memory (used by the scaling benchmarks on very large instances).
    """
    if tie not in ("smallest", "largest"):
        raise ValueError(f"unknown tie rule {tie!r}")
    if instance.T == 0:
        return OfflineResult(schedule=np.zeros(0, dtype=np.int64), cost=0.0,
                             method="dp")
    if not return_schedule:
        F = instance.F
        beta = instance.beta
        width = F.shape[1]
        states = np.arange(width, dtype=np.float64)
        row = F[0] + beta * states
        for t in range(1, F.shape[0]):
            up = beta * states + prefix_min(row - beta * states)
            down = suffix_min(row)
            row = F[t] + np.minimum(up, down)
        return OfflineResult(schedule=None, cost=float(row.min()),
                             method="dp")
    D = dp_value_table(instance)
    schedule = _reconstruct(instance, D, tie)
    return OfflineResult(schedule=schedule, cost=float(D[-1].min()),
                         method="dp")


def solve_dp_quadratic(instance: Instance) -> OfflineResult:
    """Naive ``O(T m^2)`` DP over all state pairs — reference only."""
    F = instance.F
    T, width = F.shape
    if T == 0:
        return OfflineResult(schedule=np.zeros(0, dtype=np.int64), cost=0.0,
                             method="dp_quadratic")
    beta = instance.beta
    states = np.arange(width, dtype=np.float64)
    # switch[j', j] = beta * (j - j')^+
    switch = beta * np.maximum(states[None, :] - states[:, None], 0.0)
    D = np.empty((T, width), dtype=np.float64)
    parent = np.zeros((T, width), dtype=np.int64)
    D[0] = F[0] + beta * states
    for t in range(1, T):
        tot = D[t - 1][:, None] + switch
        parent[t] = np.argmin(tot, axis=0)
        D[t] = F[t] + np.min(tot, axis=0)
    x = np.empty(T, dtype=np.int64)
    x[T - 1] = int(np.argmin(D[T - 1]))
    for t in range(T - 1, 0, -1):
        x[t - 1] = parent[t, x[t]]
    return OfflineResult(schedule=x, cost=float(D[-1].min()),
                         method="dp_quadratic")
