"""Tests for algorithm B (Section 5.2.1) and Lemma 21's ratio values."""

import numpy as np
import pytest

from repro.core.instance import Instance
from repro.core.schedule import cost
from repro.offline import solve_dp
from repro.online import AlgorithmB, run_online


def phi_rows(pattern: str, eps: float) -> np.ndarray:
    """'0' -> phi_0 = eps|x|, '1' -> phi_1 = eps|1-x| tabulated on {0,1}."""
    lut = {"0": [0.0, eps], "1": [eps, 0.0]}
    return np.array([lut[c] for c in pattern])


class TestStepping:
    def test_moves_half_slope_toward_minimizer(self):
        inst = Instance(beta=2.0, F=phi_rows("111", 0.2))
        res = run_online(inst, AlgorithmB())
        np.testing.assert_allclose(res.schedule, [0.1, 0.2, 0.3])

    def test_clamps_at_one(self):
        eps = 0.5
        inst = Instance(beta=2.0, F=phi_rows("11111", eps))
        res = run_online(inst, AlgorithmB())
        np.testing.assert_allclose(res.schedule,
                                   [0.25, 0.5, 0.75, 1.0, 1.0])

    def test_clamps_at_zero(self):
        inst = Instance(beta=2.0, F=phi_rows("000", 0.4))
        res = run_online(inst, AlgorithmB())
        np.testing.assert_allclose(res.schedule, [0.0, 0.0, 0.0])

    def test_requires_two_state_space(self):
        algo = AlgorithmB()
        with pytest.raises(ValueError):
            algo.reset(3, 2.0)


class TestLemma21Case1:
    """If B returns to 0 (N0 = N1), its cost on the segment is
    T*eps/2 (switching) + (T/2) eps (1 - eps/2) (operating pairs), versus
    OPT <= eps T / 2 — ratio exactly 2 - eps/2 on the pure segment."""

    def test_ratio_value_on_updown_sweep(self):
        eps = 0.1
        k = int(1 / eps) * 2  # full sweep up needs 2/eps steps
        pattern = "1" * k + "0" * k
        inst = Instance(beta=2.0, F=phi_rows(pattern, eps))
        res = run_online(inst, AlgorithmB())
        # B's cost, computed independently from the lemma's accounting:
        T = 2 * k
        switching = T * eps / 2  # every step moves eps/2 at unit rate
        assert res.schedule[k - 1] == pytest.approx(1.0)
        assert res.schedule[-1] == pytest.approx(0.0)
        # Operating: pairs contribute eps(1 - eps/2) each; the unmatched
        # boundary states contribute the 1 - eps/2 term of case 2.
        got_ratio = res.cost / solve_dp(inst).cost
        assert got_ratio == pytest.approx(2 - eps / 2, abs=0.15)

    def test_ratio_approaches_two(self):
        ratios = []
        for eps in (0.2, 0.1, 0.05):
            k = int(2 / eps)
            pattern = ("1" * k + "0" * k) * 3
            inst = Instance(beta=2.0, F=phi_rows(pattern, eps))
            res = run_online(inst, AlgorithmB())
            ratios.append(res.cost / solve_dp(inst).cost)
        assert ratios[-1] > ratios[0] - 1e-9
        assert ratios[-1] > 1.9


class TestCostAccounting:
    def test_fractional_cost_matches_manual(self):
        """Spot-check eq.-(1) pricing of B's fractional schedule."""
        eps = 0.2
        inst = Instance(beta=2.0, F=phi_rows("110", eps))
        res = run_online(inst, AlgorithmB())
        x = np.array([0.1, 0.2, 0.1])
        np.testing.assert_allclose(res.schedule, x)
        expected = (eps * 0.9 + eps * 0.8 + eps * 0.1) + 2.0 * 0.2
        assert res.cost == pytest.approx(expected)
        assert cost(inst, x, integral=False) == pytest.approx(expected)
