"""Vectorized work-function kernel: fused whole-table sweep.

Instead of materializing one ``hat-C^L_tau`` row at a time and reading
its bounds back per step (the scalar reference), this kernel writes the
full ``(T, m+1)`` work-function table ``D`` with six in-place ufunc
calls per step — no per-step Python-object churn beyond the calls
themselves — and then extracts *every* per-step bound pair with two
table-wide ``argmin`` passes:

* ``lo[t] = argmin_first(D[t])`` is ``D.argmin(axis=1)`` (NumPy's
  ``argmin`` returns the first minimizer);
* ``hi[t] = argmin_last(D[t] - beta x)`` is read off a reversed view of
  the Lemma 7 table ``D - beta x``.

Every floating-point operation is the *same ufunc in the same order* as
the scalar reference (commutative reorderings of ``+``/``min`` operands
excepted, which are bit-exact for IEEE doubles), so the results are
bit-identical — the contract ``docs/KERNELS.md`` spells out and
``tests/test_kernels.py`` enforces.
"""

from __future__ import annotations

import numpy as np

__all__ = ["sweep_workfunction"]


def sweep_workfunction(costs: np.ndarray, beta: float):
    """Whole-table ``O(T m)`` sweep over a ``(T, m+1)`` cost table."""
    from . import SweepResult
    F = np.asarray(costs, dtype=np.float64)
    T, m = F.shape[0], F.shape[1] - 1
    if T == 0:
        empty = np.empty(0, dtype=np.int64)
        return SweepResult(lo=empty, hi=empty, opt=0.0)
    states = np.arange(m + 1, dtype=np.float64)
    bstates = beta * states
    D = np.empty((T, m + 1), dtype=np.float64)
    # tau = 1: hat-C^L_1(x) = f_1(x) + beta x  (x_0 = 0)
    np.add(F[0], bstates, out=D[0])
    buf = np.empty(m + 1, dtype=np.float64)
    acc = np.minimum.accumulate
    sub, add, mini = np.subtract, np.add, np.minimum
    # Hoist all row views out of the hot loop: ufunc dispatch is the
    # only remaining per-step Python cost.
    rows, rows_r, frows = list(D), list(D[:, ::-1]), list(F)
    prev, prev_r = rows[0], rows_r[0]
    for t in range(1, T):
        cur, cur_r = rows[t], rows_r[t]
        # up = beta x + prefix_min(prev - beta x)
        sub(prev, bstates, out=buf)
        acc(buf, out=buf)
        add(buf, bstates, out=buf)
        # down = suffix_min(prev), written via reversed views
        acc(prev_r, out=cur_r)
        # D[t] = f_t + min(up, down)
        mini(buf, cur, out=cur)
        add(cur, frows[t], out=cur)
        prev, prev_r = cur, cur_r
    # Bounds, whole-table: x^L = first minimizer of hat-C^L, x^U = last
    # minimizer of hat-C^U = hat-C^L - beta x (Lemma 7).
    lo = D.argmin(axis=1)
    CU = D - bstates
    hi = m - CU[:, ::-1].argmin(axis=1)
    opt = float(D[-1].min())
    return SweepResult(lo=lo.astype(np.int64, copy=False),
                       hi=hi.astype(np.int64, copy=False), opt=opt)
