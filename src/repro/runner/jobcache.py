"""Per-job content-addressed result cache with pluggable backends.

The engine's unit of caching is one *record* — the result row of one
grid job, the offline optimum of one instance, or one sweep-point
measurement — addressed by the SHA-256 of the record's coordinates.
Because keys depend only on content (plus the engine version baked into
the payload by the caller), overlapping grids share work automatically:
re-running a grid extended by one seed pays exactly the new seed's jobs,
and two different grids that touch the same (scenario, T, seed) instance
solve its optimum once between them.

Two storage backends implement the same ``get``/``put`` contract:

* ``json`` — one small JSON file per record under
  ``root/<kind>/<key[:2]>/<key>.json`` (sharded by the first key byte so
  no directory grows unboundedly).  Writes go through a per-process temp
  file and an atomic rename, so concurrent writers of the same key are
  safe — last writer wins with identical content.  A file that fails to
  parse, or whose embedded key does not match its name, is treated as a
  miss and silently overwritten on the next put.
* ``sqlite`` — a single ``root/cache.db`` in WAL mode holding every
  record in one ``records`` table.  100k-job sweeps cost one inode
  instead of 100k, reads need no directory walks, and WAL plus a busy
  timeout make concurrent writers (the engine's worker processes, or two
  overlapping sweeps) safe.  An unreadable database or record is a miss;
  a corrupt database file is moved aside and recreated on the next put.

``JobCache(root)`` auto-detects: an existing ``cache.db`` (or a ``.db``
path) selects sqlite, anything else the JSON directory layout — so
migrated caches keep working with no caller changes.  ``repro cache
migrate`` converts a JSON directory in place.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import sqlite3
import time

import numpy as np

from . import faults

__all__ = ["JobCache", "busy_stats", "connect_wal", "content_key",
           "jsonify", "migrate_cache", "with_busy_retry"]

#: filename of the sqlite backend inside a cache directory
DB_NAME = "cache.db"

BACKENDS = ("json", "sqlite")

#: default SQLITE_BUSY retry budget and backoff schedule
BUSY_RETRIES = 4
BUSY_BACKOFF = 0.02
BUSY_BACKOFF_MAX = 0.5

#: injectable sleep (tests patch this to capture the schedule)
_BUSY_SLEEP = time.sleep

# Monotonic per-process counter; consumers (run_grid) take
# before/after deltas, mirroring the kernels sweep-memo pattern.
_BUSY_STATS = {"sqlite_busy_retries": 0}


def busy_stats() -> dict:
    """Snapshot of the monotonic per-process ``sqlite_busy_retries``
    counter (one increment per retried ``database is locked`` error)."""
    return dict(_BUSY_STATS)


def with_busy_retry(fn, *, retries: int = BUSY_RETRIES,
                    backoff: float = BUSY_BACKOFF,
                    backoff_max: float = BUSY_BACKOFF_MAX):
    """Call ``fn()``, absorbing transient SQLITE_BUSY contention.

    A ``sqlite3.OperationalError`` whose message mentions ``locked``
    (the SQLITE_BUSY / SQLITE_LOCKED family — what a concurrent
    ``BEGIN IMMEDIATE`` or a saturated busy timeout surfaces) is
    retried up to ``retries`` times with capped exponential backoff
    (``min(backoff * 2**(attempt-1), backoff_max)``), each retry
    counted in :func:`busy_stats`.  Any other error — and a lock that
    outlives the budget — propagates to the caller unchanged.  Shared
    by the sqlite cache backend, the lease queue and the grid service.
    """
    attempt = 0
    while True:
        try:
            return fn()
        except sqlite3.OperationalError as exc:
            if "locked" not in str(exc) or attempt >= retries:
                raise
            attempt += 1
            _BUSY_STATS["sqlite_busy_retries"] += 1
            _BUSY_SLEEP(min(backoff * 2 ** (attempt - 1), backoff_max))


def connect_wal(db_path: pathlib.Path) -> sqlite3.Connection:
    """Open ``db_path`` with the cache's WAL machinery: autocommit,
    WAL journal, NORMAL sync and a generous busy timeout, so concurrent
    writers (engine workers, overlapping sweeps, result sinks) are safe.
    Shared by the cache backend and :mod:`repro.runner.sinks`."""
    db_path.parent.mkdir(parents=True, exist_ok=True)
    conn = sqlite3.connect(db_path, timeout=30.0, isolation_level=None)
    conn.execute("PRAGMA journal_mode=WAL")
    conn.execute("PRAGMA synchronous=NORMAL")
    return conn


def jsonify(value):
    """Recursively convert numpy scalars/arrays to plain Python values."""
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return [jsonify(v) for v in value.tolist()]
    if isinstance(value, dict):
        return {k: jsonify(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonify(v) for v in value]
    return value


def content_key(payload: dict) -> str:
    """Stable hash of a JSON-serializable coordinate payload.

    Callers must include their own version token (e.g. the engine
    version) in the payload so format changes invalidate old records.
    """
    blob = json.dumps(jsonify(payload), sort_keys=True)
    return hashlib.sha256(blob.encode()).hexdigest()[:24]


class _JsonBackend:
    """One JSON file per record, sharded dirs, atomic writes."""

    name = "json"

    def __init__(self, root: pathlib.Path):
        self.root = root

    def path(self, kind: str, key: str) -> pathlib.Path:
        """Where the record of ``key`` lives (whether or not it exists)."""
        return self.root / kind / key[:2] / f"{key}.json"

    def get(self, kind: str, key: str):
        path = self.path(kind, key)
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        if not isinstance(payload, dict) or payload.get("key") != key:
            return None  # foreign or corrupted content: recompute
        try:
            # record the access in atime (explicitly, so relatime mounts
            # don't matter) and keep mtime = written time: prune-by-age
            # keys on mtime, the LRU size bound on atime
            os.utime(path, (time.time(), path.stat().st_mtime))
        except OSError:
            pass
        return payload.get("record")

    def put(self, kind: str, key: str, record, created=None) -> None:
        path = self.path(kind, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".{os.getpid()}.tmp")
        tmp.write_text(json.dumps({"key": key, "record": jsonify(record)},
                                  sort_keys=True))
        tmp.replace(path)
        if created is not None:
            os.utime(path, (created, created))

    def _files(self):
        if not self.root.is_dir():
            return
        for kind_dir in sorted(self.root.iterdir()):
            if kind_dir.is_dir():
                yield from ((kind_dir.name, p)
                            for p in sorted(kind_dir.glob("*/*.json")))

    def iter_records(self):
        for kind, path in self._files():
            key = path.stem
            record = self.get(kind, key)
            if record is not None:
                yield kind, key, record, path.stat().st_mtime

    def stats(self) -> dict:
        entries: dict[str, int] = {}
        size = 0
        for kind, path in self._files():
            entries[kind] = entries.get(kind, 0) + 1
            size += path.stat().st_size
        return {"backend": self.name, "entries": entries,
                "total": sum(entries.values()), "bytes": size}

    def prune(self, cutoff: float) -> int:
        """Remove records last written before ``cutoff`` (epoch seconds)."""
        removed = 0
        for _kind, path in list(self._files()):
            if path.stat().st_mtime < cutoff:
                path.unlink(missing_ok=True)
                removed += 1
        return removed

    def prune_bytes(self, max_bytes: int) -> int:
        """Evict least-recently-accessed records until the cache holds at
        most ``max_bytes``; returns the number of records removed."""
        entries = []
        for _kind, path in self._files():
            st = path.stat()
            entries.append((max(st.st_atime, st.st_mtime), st.st_size,
                            path))
        total = sum(size for _, size, _ in entries)
        removed = 0
        for _mtime, size, path in sorted(entries):
            if total <= max_bytes:
                break
            path.unlink(missing_ok=True)
            total -= size
            removed += 1
        return removed

    def clear(self) -> int:
        removed = 0
        for _kind, path in list(self._files()):
            path.unlink(missing_ok=True)
            removed += 1
        return removed


class _SqliteBackend:
    """All records in one WAL-mode SQLite database."""

    name = "sqlite"

    def __init__(self, db_path: pathlib.Path):
        self.db_path = db_path
        self._conn: sqlite3.Connection | None = None
        self._pid: int | None = None

    def _connection(self, create: bool = True) -> sqlite3.Connection | None:
        """This process's connection; ``create=False`` returns ``None``
        instead of creating an empty database — read paths must not
        flip a JSON cache dir's auto-detection by materializing a
        ``cache.db`` as a side effect."""
        # one connection per process: connections must not cross a fork
        if self._conn is None or self._pid != os.getpid():
            fresh = not self.db_path.exists()
            if not create and fresh:
                return None
            conn = connect_wal(self.db_path)
            if fresh:
                # new caches keep a free-page map so pruning can
                # reclaim space with PRAGMA incremental_vacuum instead
                # of a full table-rewriting VACUUM per eviction round;
                # the mode only takes hold through a VACUUM, which is
                # free here — the database is still empty
                conn.execute("PRAGMA auto_vacuum=INCREMENTAL")
                conn.execute("VACUUM")
            conn.execute(
                "CREATE TABLE IF NOT EXISTS records ("
                " kind TEXT NOT NULL, key TEXT NOT NULL,"
                " record TEXT NOT NULL, created REAL NOT NULL,"
                " accessed REAL, PRIMARY KEY (kind, key))")
            # databases written before the LRU column existed
            columns = {row[1] for row in
                       conn.execute("PRAGMA table_info(records)")}
            if "accessed" not in columns:
                conn.execute("ALTER TABLE records ADD COLUMN accessed REAL")
            self._conn, self._pid = conn, os.getpid()
        return self._conn

    def _discard(self) -> None:
        if self._conn is not None:
            try:
                self._conn.close()
            except sqlite3.Error:
                pass
        self._conn = None

    def _heal(self) -> None:
        """Move a corrupt database aside so the next write starts fresh.

        The WAL companions (``-wal``/``-shm``) go with it — left behind,
        SQLite would replay the stale WAL frames into the fresh file."""
        self._discard()
        quarantine = self.db_path.with_name(
            f"{self.db_path.name}.corrupt.{os.getpid()}")
        try:
            self.db_path.replace(quarantine)
        except OSError:
            pass
        for suffix in ("-wal", "-shm"):
            companion = self.db_path.with_name(self.db_path.name + suffix)
            try:
                companion.replace(quarantine.with_name(
                    quarantine.name + suffix))
            except OSError:
                pass

    def get(self, kind: str, key: str):
        try:
            conn = self._connection(create=False)
            if conn is None:
                return None
            row = conn.execute(
                "SELECT record FROM records WHERE kind = ? AND key = ?",
                (kind, key)).fetchone()
        except sqlite3.Error:
            self._discard()
            return None
        if row is not None:
            try:
                conn.execute(  # last-access drives the LRU prune;
                    # best-effort: a lost stamp must not mask the hit
                    "UPDATE records SET accessed = ? WHERE kind = ? "
                    "AND key = ?", (time.time(), kind, key))
            except sqlite3.Error:
                self._discard()
        if row is None:
            return None
        try:
            return json.loads(row[0])
        except ValueError:
            return None  # corrupted record: recompute

    _INSERT = ("INSERT OR REPLACE INTO records "
               "(kind, key, record, created, accessed)"
               " VALUES (?, ?, ?, ?, ?)")

    def put(self, kind: str, key: str, record, created=None) -> None:
        blob = json.dumps(jsonify(record), sort_keys=True)
        created = time.time() if created is None else float(created)
        values = (kind, key, blob, created, created)
        def _attempt():
            faults.fire("sqlite_lock", key)
            self._connection().execute(self._INSERT, values)

        try:
            # transient lock contention heals inside the busy-retry
            # budget; the fault site sits inside the retried closure so
            # an injected nth=(1,) lock exercises exactly that path
            with_busy_retry(_attempt)
        except sqlite3.OperationalError:
            # still failing (persistent lock, disk full, ...): the
            # database is healthy — surface the error, never
            # quarantine the cache
            self._discard()
            raise
        except sqlite3.DatabaseError:
            # actual corruption ("file is not a database", malformed
            # image): quarantine the file, retry on a fresh one
            self._heal()
            self._connection().execute(self._INSERT, values)

    def iter_records(self):
        try:
            conn = self._connection(create=False)
            if conn is None:
                return
            rows = conn.execute(
                "SELECT kind, key, record, created FROM records"
                " ORDER BY kind, key").fetchall()
        except sqlite3.Error:
            self._discard()
            return
        for kind, key, blob, created in rows:
            try:
                yield kind, key, json.loads(blob), created
            except ValueError:
                continue

    _VACUUM_MODES = {0: "none", 1: "full", 2: "incremental"}

    def _auto_vacuum(self, conn: sqlite3.Connection) -> int:
        """The database's ``auto_vacuum`` mode (0 on older caches)."""
        try:
            return int(conn.execute("PRAGMA auto_vacuum").fetchone()[0])
        except sqlite3.Error:
            return 0

    def stats(self) -> dict:
        entries: dict[str, int] = {}
        vacuum = "none"
        try:
            conn = self._connection(create=False)
            if conn is not None:
                for kind, n in conn.execute(
                        "SELECT kind, COUNT(*) FROM records GROUP BY kind"):
                    entries[kind] = n
                vacuum = self._VACUUM_MODES.get(self._auto_vacuum(conn),
                                                "none")
        except sqlite3.Error:
            self._discard()
        return {"backend": self.name, "entries": entries,
                "total": sum(entries.values()), "bytes": self._size(),
                "auto_vacuum": vacuum}

    def prune(self, cutoff: float) -> int:
        try:
            conn = self._connection(create=False)
            if conn is None:
                return 0
            cur = conn.execute(
                "DELETE FROM records WHERE created < ?", (cutoff,))
            return cur.rowcount
        except sqlite3.Error:
            self._discard()
            return 0

    def _size(self) -> int:
        """Database bytes on disk: main file plus unflushed WAL (the
        ``-shm`` index is transient shared memory, not persisted)."""
        total = 0
        for path in (self.db_path,
                     self.db_path.with_name(self.db_path.name + "-wal")):
            try:
                total += path.stat().st_size
            except OSError:
                pass
        return total

    def prune_bytes(self, max_bytes: int) -> int:
        """Evict least-recently-accessed records until the database
        holds at most ``max_bytes``.

        Space is reclaimed after each eviction round with ``PRAGMA
        incremental_vacuum`` when the database was created with
        ``auto_vacuum=INCREMENTAL`` (every cache.db this backend
        creates) — returning the freed pages without rewriting the
        whole file.  Databases from before the mode existed fall back
        to a full ``VACUUM`` per round, which on a multi-GB cache costs
        a complete table rewrite each time.
        """
        removed = 0
        try:
            conn = self._connection(create=False)
            if conn is None:
                return 0
            incremental = self._auto_vacuum(conn) == 2
            # drain the WAL first so size estimates see the real file
            conn.execute("PRAGMA wal_checkpoint(TRUNCATE)")
            while self._size() > max_bytes:
                count = conn.execute(
                    "SELECT COUNT(*) FROM records").fetchone()[0]
                if count == 0:
                    break
                # estimate how many evictions close the gap, floor 1 so
                # the loop always progresses even on bad estimates
                overshoot = self._size() - max_bytes
                batch = max(1, min(count,
                                   count * overshoot // self._size()))
                conn.execute(
                    "DELETE FROM records WHERE rowid IN (SELECT rowid "
                    "FROM records ORDER BY COALESCE(accessed, created) "
                    "LIMIT ?)", (batch,))
                removed += batch
                # reclaim the space: both paths rebuild through the
                # WAL, so the checkpoint must come after them.  The
                # incremental pragma frees one page per statement step,
                # and sqlite3.execute only steps a rowless PRAGMA once
                # — executescript drives it to completion
                if incremental:
                    conn.executescript("PRAGMA incremental_vacuum")
                else:
                    conn.execute("VACUUM")
                conn.execute("PRAGMA wal_checkpoint(TRUNCATE)")
        except sqlite3.Error:
            self._discard()
        return removed

    def clear(self) -> int:
        try:
            conn = self._connection(create=False)
            if conn is None:
                return 0
            cur = conn.execute("DELETE FROM records")
            return cur.rowcount
        except sqlite3.Error:
            self._discard()
            return 0


class JobCache:
    """Content-addressed store of JSON records under one root.

    ``backend`` is ``"json"``, ``"sqlite"`` or ``None`` to auto-detect:
    a root ending in ``.db`` or containing ``cache.db`` opens the sqlite
    backend, anything else the JSON directory layout (the historical
    default, so existing caches keep working).
    """

    def __init__(self, root, backend: str | None = None):
        """Open (or create) the cache at ``root`` with ``backend``."""
        self.root = pathlib.Path(root)
        if backend is None:
            backend = ("sqlite" if self.root.suffix == ".db"
                       or (self.root / DB_NAME).exists() else "json")
        if backend not in BACKENDS:
            raise ValueError(f"unknown cache backend {backend!r}; "
                             f"choose from {BACKENDS}")
        if backend == "sqlite":
            db = (self.root if self.root.suffix == ".db"
                  else self.root / DB_NAME)
            self._backend = _SqliteBackend(db)
        else:
            self._backend = _JsonBackend(self.root)

    @property
    def backend(self) -> str:
        """Name of the active storage backend."""
        return self._backend.name

    def path(self, kind: str, key: str) -> pathlib.Path:
        """JSON backend only: where the record of ``key`` lives."""
        if not isinstance(self._backend, _JsonBackend):
            raise ValueError("path() is only meaningful for the json "
                             "backend; sqlite stores records in "
                             f"{self._backend.db_path}")
        return self._backend.path(kind, key)

    def get(self, kind: str, key: str):
        """The stored record, or ``None`` on miss/corruption."""
        return self._backend.get(kind, key)

    def put(self, kind: str, key: str, record, created=None) -> None:
        """Persist a record atomically; ``created`` (epoch seconds)
        overrides the write timestamp used by ``prune`` (migration)."""
        self._backend.put(kind, key, record, created=created)

    def iter_records(self):
        """Yield ``(kind, key, record, created)`` for every readable
        record (unreadable ones are skipped, as in ``get``)."""
        return self._backend.iter_records()

    def stats(self) -> dict:
        """``{"backend", "entries": {kind: n}, "total", "bytes"}``."""
        return self._backend.stats()

    def prune(self, older_than: float) -> int:
        """Remove records written more than ``older_than`` seconds ago;
        returns the number removed."""
        return self._backend.prune(time.time() - float(older_than))

    def prune_bytes(self, max_bytes: int) -> int:
        """Size-bounded LRU eviction: drop least-recently-accessed
        records until the cache occupies at most ``max_bytes`` on disk;
        returns the number removed.  Keeps long-lived caches bounded
        without cron jobs (CLI: ``repro cache prune --max-bytes``)."""
        return self._backend.prune_bytes(int(max_bytes))

    def clear(self) -> int:
        """Remove every record; returns the number removed."""
        return self._backend.clear()


def migrate_cache(src: JobCache, dst: JobCache) -> int:
    """Copy every record of ``src`` into ``dst`` (timestamps preserved);
    returns the number of records copied."""
    copied = 0
    for kind, key, record, created in src.iter_records():
        dst.put(kind, key, record, created=created)
        copied += 1
    return copied
