"""E12 — ablations of the design choices DESIGN.md calls out.

* The binary-search refinement loop does real work (coarse grid alone and
  truncated refinement are suboptimal at high rates);
* windows must be centered on the optimal coarse schedule (Lemma 5) —
  refining around a greedy schedule fails;
* the empirical slack of the half-window (xi in {-1,0,1}) is recorded;
* LCP's laziness matters: the eager variant (always jump to a bound)
  loses to LCP on oscillating traces.
"""

import numpy as np

from repro._util import argmin_first
from repro.analysis import optimal_cost
from repro.offline import solve_dp, window_states, windowed_dp
from repro.online import EagerLCP, run_online
from repro.runner import GridSpec, build_instance, run_grid
from repro.runner.scenarios import TRACE_FAMILIES

from conftest import random_convex_instance, record

import sys
import pathlib
sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent
                       / "tests"))
from test_offline_binary_search import (_binary_search_span1,  # noqa: E402
                                        _binary_search_truncated)


def test_e12_refinement_ablation(benchmark):
    rng = np.random.default_rng(41)
    trials = 60
    fails = {"coarse_only": 0, "skip_last": 0, "span1": 0,
             "greedy_center": 0}
    for _ in range(trials):
        T = int(rng.integers(2, 8))
        m = int(rng.integers(8, 33))
        inst = random_convex_instance(rng, T, m,
                                      float(rng.uniform(0.2, 3.0)))
        opt = solve_dp(inst, return_schedule=False).cost
        if _binary_search_truncated(inst, keep_iterations=1) > opt + 1e-9:
            fails["coarse_only"] += 1
        if _binary_search_truncated(inst, skip_last=True) > opt + 1e-9:
            fails["skip_last"] += 1
        if _binary_search_span1(inst) > opt + 1e-9:
            fails["span1"] += 1
        greedy = np.array([argmin_first(inst.F[t]) for t in range(T)],
                          dtype=np.int64)
        _, c = windowed_dp(inst, window_states(greedy, 1, inst.m))
        if c > opt + 1e-9:
            fails["greedy_center"] += 1
    rows = [{"variant": k, "suboptimal_rate_%": 100 * v / trials}
            for k, v in fails.items()]
    record("E12_refinement", rows,
           title="E12: binary-search ablations (suboptimality rates)")
    assert fails["coarse_only"] > trials // 3
    assert fails["skip_last"] > trials // 6
    assert fails["greedy_center"] > trials // 6
    inst = random_convex_instance(rng, 64, 256, 2.0)
    from repro.offline import solve_binary_search
    benchmark(solve_binary_search, inst)


def test_e12_rounding_kernel_ablation(benchmark):
    """Replacing the Section-4 Markov kernel with independent per-step
    rounding preserves the operating expectation (Lemma 19) but breaks
    the switching identity (Lemma 20): expected switching blows up and
    2-competitiveness is lost on fractional plateaus."""
    from repro.core.instance import Instance
    from repro.online import (ThresholdFractional, expected_cost_exact,
                              expected_cost_independent, run_online)

    T = 200
    rows_f = [[2.0 * 0.5, 0.0]] + [[0.01, 0.01]] * (T - 1)
    inst = Instance(beta=2.0, F=np.array(rows_f))
    fr = run_online(inst, ThresholdFractional())
    opt = optimal_cost(inst)
    markov = expected_cost_exact(inst, fr.schedule)
    indep = expected_cost_independent(inst, fr.schedule)
    rows = [
        {"kernel": "markov (Section 4)", "E_operating": markov["operating"],
         "E_switching": markov["switching"],
         "E_total_over_opt": markov["total"] / opt},
        {"kernel": "independent", "E_operating": indep["operating"],
         "E_switching": indep["switching"],
         "E_total_over_opt": indep["total"] / opt},
    ]
    record("E12_rounding_kernel", rows,
           title="E12: rounding-kernel ablation")
    assert markov["total"] <= 2 * opt + 1e-7
    assert indep["total"] > 2 * opt
    benchmark(expected_cost_independent, inst, fr.schedule)


def test_e12_laziness_ablation(benchmark):
    """LCP vs the eager variant across trace families: laziness wins in
    aggregate (that is the 'lazy' in Lazy Capacity Provisioning).

    Engine-backed: one ``run_grid`` over the five trace families — the
    shared offline optimum per family is solved once in phase 1."""
    grid_rows = run_grid(GridSpec(scenarios=TRACE_FAMILIES,
                                  algorithms=("lcp", "eager-lcp"),
                                  seeds=(0,), sizes=(168,)))
    per_alg = {}
    for g in grid_rows:
        per_alg.setdefault(g["algorithm"], {})[g["scenario"]] = g
    rows = []
    lcp_total = eager_total = opt_total = 0.0
    for name in TRACE_FAMILIES:
        lcp_row = per_alg["lcp"][name]
        eager_row = per_alg["eager-lcp"][name]
        lcp_total += lcp_row["cost"]
        eager_total += eager_row["cost"]
        opt_total += lcp_row["opt"]
        rows.append({"workload": name, "lcp_over_opt": lcp_row["ratio"],
                     "eager_over_opt": eager_row["ratio"]})
    rows.append({"workload": "TOTAL", "lcp_over_opt": lcp_total / opt_total,
                 "eager_over_opt": eager_total / opt_total})
    record("E12_laziness", rows, title="E12: laziness ablation")
    assert lcp_total <= eager_total
    inst = build_instance("onoff", 168)
    benchmark(run_online, inst, EagerLCP())
