"""Tests for the vectorized kernels in repro._util."""

import numpy as np
from hypothesis import given, strategies as st

from repro._util import (argmin_first, argmin_last, prefix_argmin, prefix_min,
                         suffix_argmin, suffix_min)

finite_arrays = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
    min_size=1, max_size=60,
).map(lambda xs: np.asarray(xs, dtype=np.float64))


class TestPrefixSuffixMin:
    def test_prefix_min_example(self):
        v = np.array([3.0, 1.0, 2.0, 0.0, 5.0])
        np.testing.assert_allclose(prefix_min(v), [3, 1, 1, 0, 0])

    def test_suffix_min_example(self):
        v = np.array([3.0, 1.0, 2.0, 0.0, 5.0])
        np.testing.assert_allclose(suffix_min(v), [0, 0, 0, 0, 5])

    @given(finite_arrays)
    def test_prefix_min_matches_naive(self, v):
        expected = np.array([v[:j + 1].min() for j in range(v.size)])
        np.testing.assert_allclose(prefix_min(v), expected)

    @given(finite_arrays)
    def test_suffix_min_matches_naive(self, v):
        expected = np.array([v[j:].min() for j in range(v.size)])
        np.testing.assert_allclose(suffix_min(v), expected)


class TestArgmins:
    def test_prefix_argmin_ties_take_smallest(self):
        v = np.array([2.0, 1.0, 1.0, 3.0])
        np.testing.assert_array_equal(prefix_argmin(v), [0, 1, 1, 1])

    def test_suffix_argmin_ties_take_largest(self):
        v = np.array([2.0, 1.0, 1.0, 3.0])
        np.testing.assert_array_equal(suffix_argmin(v), [2, 2, 2, 3])

    @given(finite_arrays)
    def test_prefix_argmin_matches_naive(self, v):
        got = prefix_argmin(v)
        for j in range(v.size):
            sub = v[:j + 1]
            expected = int(np.flatnonzero(sub == sub.min())[0])
            assert got[j] == expected

    @given(finite_arrays)
    def test_suffix_argmin_matches_naive(self, v):
        got = suffix_argmin(v)
        for j in range(v.size):
            sub = v[j:]
            expected = j + int(np.flatnonzero(sub == sub.min())[-1])
            assert got[j] == expected

    def test_argmin_first_last(self):
        v = np.array([1.0, 0.0, 0.0, 2.0])
        assert argmin_first(v) == 1
        assert argmin_last(v) == 2

    @given(finite_arrays)
    def test_argmin_first_last_consistent(self, v):
        lo, hi = argmin_first(v), argmin_last(v)
        assert lo <= hi
        assert v[lo] == v.min()
        assert v[hi] == v.min()
