"""Incremental work functions ``hat-C^L_tau`` and ``hat-C^U_tau`` (§3.2).

``hat-C^L_tau(x)`` is the minimum cost of serving ``f_1..f_tau`` and
ending in state ``x`` when switching is charged on powering **up**;
``hat-C^U_tau(x)`` charges powering **down** instead.  The paper's LCP
bounds are their minimizers:

* ``x^L_tau`` — the *smallest* minimizer of ``hat-C^L_tau``;
* ``x^U_tau`` — the *largest*  minimizer of ``hat-C^U_tau``.

Both functions are maintained in ``O(m)`` per step with prefix/suffix
minima.  The implementation tracks ``hat-C^L`` and derives ``hat-C^U``
through Lemma 7 (``hat-C^L_tau(x) = hat-C^U_tau(x) + beta x``); an
independent ``hat-C^U`` recurrence is provided for the Lemma 7 tests.

The recurrences (convexity of every intermediate function is Lemma 8,
verified by the test suite):

``hat-C^L_tau(x) = f_tau(x) + min( beta x + min_{y<=x}(hat-C^L_{tau-1}(y) - beta y),
                                   min_{y>=x} hat-C^L_{tau-1}(y) )``

``hat-C^U_tau(x) = f_tau(x) + min( min_{y<=x} hat-C^U_{tau-1}(y),
                                   -beta x + min_{y>=x}(hat-C^U_{tau-1}(y) + beta y) )``
"""

from __future__ import annotations

import numpy as np

from .._util import argmin_first, argmin_last, prefix_min, suffix_min

__all__ = ["WorkFunctions", "update_CL", "update_CU"]


def update_CL(prev: np.ndarray | None, f_row: np.ndarray,
              beta: float, states: np.ndarray | None = None) -> np.ndarray:
    """One step of the ``hat-C^L`` recurrence (``prev=None`` for tau=1,
    where ``hat-C^L_1(x) = f_1(x) + beta x`` since ``x_0 = 0``).

    ``states`` is the tabulation grid ``0..m``; callers in the hot
    replay loop (:class:`WorkFunctions`) pass their cached grid so the
    per-step update allocates no index vector.
    """
    if states is None:
        states = np.arange(f_row.shape[0], dtype=np.float64)
    if prev is None:
        return f_row + beta * states
    up = beta * states + prefix_min(prev - beta * states)
    down = suffix_min(prev)
    return f_row + np.minimum(up, down)


def update_CU(prev: np.ndarray | None, f_row: np.ndarray,
              beta: float, states: np.ndarray | None = None) -> np.ndarray:
    """One step of the ``hat-C^U`` recurrence (``prev=None`` for tau=1,
    where ``hat-C^U_1(x) = f_1(x)``: powering up is free under U)."""
    if states is None:
        states = np.arange(f_row.shape[0], dtype=np.float64)
    if prev is None:
        return f_row.astype(np.float64, copy=True)
    stay = prefix_min(prev)
    down = -beta * states + suffix_min(prev + beta * states)
    return f_row + np.minimum(stay, down)


class WorkFunctions:
    """Stateful maintenance of ``hat-C^L_tau`` / ``hat-C^U_tau``.

    Parameters
    ----------
    m, beta:
        State range ``0..m`` and switching cost.
    track_U:
        Maintain ``hat-C^U`` with its own recurrence too (tests); by
        default it is derived from Lemma 7.
    """

    def __init__(self, m: int, beta: float, *, track_U: bool = False):
        if m < 0:
            raise ValueError("m must be non-negative")
        if beta <= 0:
            raise ValueError("beta must be positive")
        self.m = m
        self.beta = beta
        self.tau = 0
        self._states = np.arange(m + 1, dtype=np.float64)
        self._CL: np.ndarray | None = None
        self._CU: np.ndarray | None = None
        self._track_U = track_U

    def update(self, f_row: np.ndarray) -> None:
        """Ingest ``f_{tau+1}`` (tabulated on ``0..m``)."""
        f_row = np.asarray(f_row, dtype=np.float64)
        if f_row.shape != (self.m + 1,):
            raise ValueError(
                f"cost row must have shape ({self.m + 1},), got {f_row.shape}")
        self._CL = update_CL(self._CL, f_row, self.beta, self._states)
        if self._track_U:
            self._CU = update_CU(self._CU, f_row, self.beta, self._states)
        self.tau += 1

    # ------------------------------------------------------------------
    # Work-function values
    # ------------------------------------------------------------------
    @property
    def CL(self) -> np.ndarray:
        """Current ``hat-C^L_tau`` table (tau >= 1)."""
        if self._CL is None:
            raise RuntimeError("no cost function ingested yet")
        return self._CL

    @property
    def CU(self) -> np.ndarray:
        """Current ``hat-C^U_tau`` table.

        Derived from Lemma 7 (``hat-C^U = hat-C^L - beta x``) unless
        ``track_U`` maintains it independently.
        """
        if self._track_U:
            if self._CU is None:
                raise RuntimeError("no cost function ingested yet")
            return self._CU
        return self.CL - self.beta * self._states

    # ------------------------------------------------------------------
    # LCP bounds
    # ------------------------------------------------------------------
    def x_lower(self) -> int:
        """``x^L_tau``: smallest minimizer of ``hat-C^L_tau`` (§3.1)."""
        return argmin_first(self.CL)

    def x_upper(self) -> int:
        """``x^U_tau``: largest minimizer of ``hat-C^U_tau`` (§3.1)."""
        return argmin_last(self.CU)

    def bounds(self) -> tuple[int, int]:
        """``(x^L_tau, x^U_tau)``; Lemma 6 guarantees ``x^L <= x^U``
        (asserted here as a structural invariant)."""
        lo, hi = self.x_lower(), self.x_upper()
        if lo > hi:  # pragma: no cover - would contradict Lemma 6
            raise AssertionError(
                f"work-function bounds crossed: x^L={lo} > x^U={hi}")
        return lo, hi
