"""Parameter-sweep harness used by the benchmarks.

A sweep is the cartesian product of parameter axes; each grid point is
evaluated by a user function returning a dict of measurements, and the
results are collected as a list of flat row dicts ready for
:mod:`repro.analysis.tables`.

Evaluation runs through the batch engine's
:func:`repro.runner.engine.parallel_map`, so passing ``n_jobs > 1``
fans grid points out over a process pool (the function must then be
picklable, i.e. module-level).  For named (scenario x algorithm) grids
with caching and competitive-ratio aggregation, prefer
:func:`repro.runner.run_grid`.
"""

from __future__ import annotations

import itertools
from typing import Callable, Mapping, Sequence

from ..runner.engine import parallel_map

__all__ = ["sweep"]


class _Eval:
    """Picklable ``point -> fn(**point)`` wrapper for the process pool."""

    def __init__(self, fn: Callable[..., Mapping]):
        self.fn = fn

    def __call__(self, point: dict) -> dict:
        return dict(self.fn(**point))


def sweep(fn: Callable[..., Mapping], grid: Mapping[str, Sequence], *,
          n_jobs: int = 1) -> list[dict]:
    """Evaluate ``fn(**point)`` on every point of the parameter grid.

    ``grid`` maps parameter names to value lists; the returned rows merge
    the grid point with ``fn``'s measurement dict (measurements win on
    key collisions being forbidden).  ``n_jobs > 1`` evaluates points on
    a process pool; row order is always the grid-product order.
    """
    names = list(grid.keys())
    points = [dict(zip(names, values))
              for values in itertools.product(*(grid[n] for n in names))]
    results = parallel_map(_Eval(fn), points, n_jobs=n_jobs)
    rows = []
    for point, result in zip(points, results):
        clash = set(point) & set(result)
        if clash:
            raise ValueError(f"measurement keys collide with grid: {clash}")
        rows.append({**point, **result})
    return rows
