"""Job-level workloads for the simulator.

A :class:`JobTrace` is the amount of work (in server-step units)
arriving in each time step.  The canonical generator draws a Poisson
number of jobs per step around a modulating rate curve (e.g. one of the
:mod:`repro.workloads.synthetic` load shapes) with heavy-ish-tailed
service demands, which is the textbook model of interactive data-center
traffic.
"""

from __future__ import annotations

import dataclasses

import numpy as np

__all__ = ["JobTrace", "poisson_job_trace"]


@dataclasses.dataclass(frozen=True)
class JobTrace:
    """Per-step arriving work.

    Attributes
    ----------
    work:
        float64 array; ``work[t]`` is the total service demand arriving
        in step ``t`` (1.0 = one server busy for one step).
    jobs:
        int64 array of arriving job counts (bookkeeping for metrics).
    """

    work: np.ndarray
    jobs: np.ndarray

    def __post_init__(self):
        work = np.ascontiguousarray(np.asarray(self.work, dtype=np.float64))
        jobs = np.ascontiguousarray(np.asarray(self.jobs, dtype=np.int64))
        if work.shape != jobs.shape or work.ndim != 1:
            raise ValueError("work and jobs must be 1-D arrays of equal "
                             "length")
        if np.any(work < 0) or np.any(jobs < 0):
            raise ValueError("work and job counts must be non-negative")
        work.setflags(write=False)
        jobs.setflags(write=False)
        object.__setattr__(self, "work", work)
        object.__setattr__(self, "jobs", jobs)

    @property
    def T(self) -> int:
        return self.work.shape[0]

    def smoothed_loads(self, window: int = 1) -> np.ndarray:
        """Moving-average load estimate (what a controller would see)."""
        if window < 1:
            raise ValueError("window must be at least 1")
        if window == 1:
            return self.work.copy()
        kernel = np.ones(window) / window
        padded = np.concatenate([np.full(window - 1, self.work[0]),
                                 self.work])
        return np.convolve(padded, kernel, mode="valid")


def poisson_job_trace(rate_curve: np.ndarray, *,
                      mean_service: float = 1.0,
                      service_cv: float = 1.0,
                      rng: np.random.Generator | int | None = None) -> JobTrace:
    """Poisson arrivals modulated by ``rate_curve`` with lognormal sizes.

    ``rate_curve[t]`` is the expected arriving *work* at step ``t``; job
    count is Poisson with mean ``rate_curve[t] / mean_service`` and each
    job's demand is lognormal with mean ``mean_service`` and coefficient
    of variation ``service_cv`` (CV ≈ 1 is exponential-like, larger is
    heavier-tailed).
    """
    g = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    rate_curve = np.asarray(rate_curve, dtype=np.float64)
    if np.any(rate_curve < 0):
        raise ValueError("rate curve must be non-negative")
    if mean_service <= 0 or service_cv < 0:
        raise ValueError("need mean_service > 0 and service_cv >= 0")
    sigma2 = np.log(1.0 + service_cv ** 2)
    mu = np.log(mean_service) - sigma2 / 2.0
    T = rate_curve.shape[0]
    work = np.zeros(T)
    jobs = np.zeros(T, dtype=np.int64)
    for t in range(T):
        n = int(g.poisson(rate_curve[t] / mean_service))
        jobs[t] = n
        if n > 0:
            if service_cv == 0:
                work[t] = n * mean_service
            else:
                work[t] = float(np.sum(
                    np.exp(mu + np.sqrt(sigma2) * g.standard_normal(n))))
    return JobTrace(work=work, jobs=jobs)
