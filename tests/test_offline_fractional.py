"""Tests for the continuous-extension optimum and Lemma 4 rounding."""

import numpy as np
import pytest

from repro.core.instance import Instance
from repro.core.schedule import cost
from repro.offline import (ceil_schedule, enumerate_optima, floor_schedule,
                           make_fractional_optimum, solve_dp,
                           solve_fractional)
from tests.conftest import random_convex_instance


class TestFractionalOptimum:
    def test_fractional_cost_equals_integral(self):
        """C-bar is piecewise linear with integral breakpoints, so the
        fractional optimum costs exactly the integral optimum."""
        rng = np.random.default_rng(70)
        for _ in range(15):
            inst = random_convex_instance(rng, int(rng.integers(1, 8)),
                                          int(rng.integers(1, 6)), 1.3)
            fr = solve_fractional(inst)
            assert fr.cost == pytest.approx(solve_dp(inst).cost)

    def test_random_fractional_schedules_never_beat_optimum(self):
        rng = np.random.default_rng(71)
        for _ in range(10):
            inst = random_convex_instance(rng, 5, 4, 1.1)
            opt = solve_dp(inst).cost
            for _ in range(50):
                X = rng.uniform(0, inst.m, size=inst.T)
                assert cost(inst, X, integral=False) >= opt - 1e-9

    def test_blend_of_optima_is_optimal(self):
        """Convexity of C-bar: blending two integral optima is optimal.

        Generic instances have unique optima, so the plateau family uses
        slopes quantized to multiples of beta/2 — ties then occur often.
        """
        rng = np.random.default_rng(72)
        found = 0
        for _ in range(120):
            inst = _tied_instance(rng)
            blend = make_fractional_optimum(inst, weight=0.37)
            if blend is None:
                continue
            found += 1
            assert cost(inst, blend, integral=False) == pytest.approx(
                solve_dp(inst).cost)
        assert found >= 5, "never found a fractional plateau to test"


def _tied_instance(rng, beta: float = 1.0):
    """Instance whose rows have slopes in {-beta, -beta/2, 0, beta/2,
    beta}: switching and operating costs tie frequently, producing
    non-trivial optimum plateaus."""
    T = int(rng.integers(1, 5))
    m = int(rng.integers(1, 4))
    rows = []
    for _ in range(T):
        slopes = np.sort(rng.choice([-beta, -beta / 2, 0.0, beta / 2, beta],
                                    size=m))
        vals = np.concatenate([[0.0], np.cumsum(slopes)])
        vals -= vals.min()
        rows.append(vals)
    return Instance(beta=beta, F=np.array(rows))


class TestLemma4:
    def _fractional_optima(self, inst, rng, tries=40):
        """Sample fractional optima: blends of enumerated integral optima."""
        optima = enumerate_optima(inst, tol=1e-9)
        out = []
        if len(optima) >= 2:
            for _ in range(tries):
                i, j = rng.integers(0, len(optima), size=2)
                lam = rng.uniform(0.05, 0.95)
                out.append(lam * optima[i] + (1 - lam) * optima[j])
        return out

    def test_floor_and_ceil_of_fractional_optima_are_optimal(self):
        rng = np.random.default_rng(73)
        checked = 0
        for _ in range(60):
            inst = _tied_instance(rng)
            opt = solve_dp(inst).cost
            for X in self._fractional_optima(inst, rng, tries=6):
                if cost(inst, X, integral=False) > opt + 1e-9:
                    continue  # tolerance-close but not exactly optimal
                lo = floor_schedule(X)
                hi = ceil_schedule(X)
                assert cost(inst, lo) == pytest.approx(opt), X
                assert cost(inst, hi) == pytest.approx(opt), X
                checked += 1
        assert checked >= 5, "no genuinely fractional optima exercised"

    def test_floor_ceil_entrywise(self):
        X = np.array([0.0, 1.5, 2.0, 0.2])
        np.testing.assert_array_equal(floor_schedule(X), [0, 1, 2, 0])
        np.testing.assert_array_equal(ceil_schedule(X), [0, 2, 2, 1])

    def test_floor_ceil_float_noise_robust(self):
        X = np.array([1.9999999999995, 2.0000000000004])
        np.testing.assert_array_equal(floor_schedule(X), [2, 2])
        np.testing.assert_array_equal(ceil_schedule(X), [2, 2])

    def test_crafted_plateau_instance(self):
        """A two-dimensional continuum of optima: f_1 has slope exactly
        -beta (so the operating saving cancels the power-up cost) and f_2
        is flat.  Every (v, w) with w <= v is optimal at cost beta; Lemma 4
        must hold on all of them."""
        beta = 0.5
        F = np.array([
            [beta, 0.0],
            [0.0, 0.0],
        ])
        inst = Instance(beta=beta, F=F)
        opt = solve_dp(inst).cost
        assert opt == pytest.approx(beta)
        rng = np.random.default_rng(8)
        for _ in range(20):
            v = rng.uniform(0, 1)
            w = rng.uniform(0, v)
            X = np.array([v, w])
            assert cost(inst, X, integral=False) == pytest.approx(opt)
            assert cost(inst, floor_schedule(X)) == pytest.approx(opt)
            assert cost(inst, ceil_schedule(X)) == pytest.approx(opt)

    def test_weight_validation(self):
        rng = np.random.default_rng(74)
        inst = random_convex_instance(rng, 2, 2, 1.0)
        with pytest.raises(ValueError):
            make_fractional_optimum(inst, weight=0.0)
        with pytest.raises(ValueError):
            make_fractional_optimum(inst, weight=1.0)
