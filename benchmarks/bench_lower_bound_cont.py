"""E8 — Theorem 6: continuous-setting lower bound 2.

Regenerates Lemma 21/23's curves: algorithm B's ratio approaches
2 - eps/2 on the adaptive adversary, and algorithms that deviate from B
(memoryless balance, eager followers) only do worse.

Both curves run as `game`-pipeline engine grids (`lb-continuous`
scenario, eps ``params`` axis); the timed kernel stays the raw loop.
"""

from repro.lower_bounds import ContinuousAdversary, play_game
from repro.online import AlgorithmB, MemorylessBalance
from repro.runner import GridSpec, run_grid

from conftest import record


def test_e8_algorithm_B_curve(benchmark):
    spec = GridSpec(scenarios=("lb-continuous",),
                    algorithms=("game-algorithm-b",), seeds=(0,),
                    sizes=(60000,),
                    params=tuple({"eps": e}
                                 for e in (0.2, 0.1, 0.05, 0.02)))
    rows = [{"eps": r["eps"], "T": r["game_T"], "ratio": r["ratio"],
             "lemma21_target": 2 - r["eps"] / 2}
            for r in run_grid(spec)]
    record("E8_continuous_B", rows,
           title="E8: continuous bound, algorithm B (-> 2)")
    assert rows[-1]["ratio"] > 1.95
    for row in rows:
        assert row["ratio"] <= 2.0 + 1e-7
    benchmark(play_game, ContinuousAdversary(0.05), AlgorithmB(), 4000)


def test_e8_deviating_algorithms_do_worse(benchmark):
    """Lemma 23: any algorithm that leaves B's trajectory pays at least
    as much; eager algorithms overshoot well past 2."""
    spec = GridSpec(scenarios=("lb-continuous",),
                    algorithms=("game-algorithm-b", "game-threshold",
                                "game-memoryless"),
                    seeds=(0,), sizes=(20000,), params=({"eps": 0.05},))
    names = {"game-algorithm-b": "algorithm-B",
             "game-threshold": "threshold",
             "game-memoryless": "memoryless"}
    rows = [{"algorithm": names[r["algorithm"]], "ratio": r["ratio"]}
            for r in run_grid(spec)]
    record("E8_deviation", rows,
           title="E8: deviating from B never helps")
    b_ratio = rows[0]["ratio"]
    for row in rows[1:]:
        assert row["ratio"] >= b_ratio - 1e-6, row
    benchmark(play_game, ContinuousAdversary(0.05), MemorylessBalance(),
              2000)
