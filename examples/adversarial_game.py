#!/usr/bin/env python
"""Watch the Section 5 lower bounds emerge from adversarial games.

Plays the paper's adaptive adversaries against the library's online
algorithms and prints the ratio curves:

* the two-state discrete adversary drives every deterministic algorithm
  toward ratio 3 (Theorem 4) — LCP meets it exactly, being optimal;
* the continuous adversary drives algorithm B toward 2 (Theorem 6);
* the same game scored in exact expectation shows the randomized
  algorithm pinned at 2 as well (Theorem 8).

Run:  python examples/adversarial_game.py
"""

from repro.analysis import format_table
from repro.lower_bounds import (ContinuousAdversary,
                                DeterministicDiscreteAdversary, play_game,
                                play_randomized_game)
from repro.online import (LCP, AlgorithmB, FollowTheMinimizer,
                          MemorylessBalance, ThresholdFractional)


def main() -> None:
    print("Theorem 4 — deterministic algorithms cannot beat 3:")
    rows = []
    for eps in (0.2, 0.1, 0.05, 0.02):
        adv = DeterministicDiscreteAdversary(eps)
        T = min(adv.horizon(), 30000)
        res = play_game(adv, LCP(), T)
        rows.append({"eps": eps, "T": T, "LCP_ratio": res.ratio})
    print(format_table(rows, floatfmt=".4f"))

    print("\n...and the adversary punishes naive algorithms even harder:")
    rows = []
    for make in (LCP, FollowTheMinimizer):
        adv = DeterministicDiscreteAdversary(0.05)
        res = play_game(adv, make(), 10000)
        rows.append({"algorithm": res.name, "ratio": res.ratio})
    print(format_table(rows, floatfmt=".4f"))

    print("\nTheorem 6 — fractional algorithms cannot beat 2:")
    rows = []
    for eps in (0.2, 0.1, 0.05):
        adv = ContinuousAdversary(eps)
        T = min(adv.horizon(), 30000)
        res = play_game(adv, AlgorithmB(), T)
        rows.append({"eps": eps, "B_ratio": res.ratio,
                     "lemma21_target": 2 - eps / 2})
    print(format_table(rows, floatfmt=".4f"))

    print("\n...deviating from B only hurts (Lemma 23):")
    rows = []
    for make in (AlgorithmB, ThresholdFractional, MemorylessBalance):
        adv = ContinuousAdversary(0.05)
        res = play_game(adv, make(), 15000)
        rows.append({"algorithm": res.name, "ratio": res.ratio})
    print(format_table(rows, floatfmt=".4f"))

    print("\nTheorem 8 — randomized algorithms cannot beat 2 "
          "(exact expected ratios):")
    rows = []
    for eps in (0.2, 0.1, 0.05):
        adv = ContinuousAdversary(eps)
        T = min(adv.horizon(), 30000)
        res = play_randomized_game(adv, ThresholdFractional(), T)
        rows.append({"eps": eps, "expected_ratio": res.ratio})
    print(format_table(rows, floatfmt=".4f"))


if __name__ == "__main__":
    main()
