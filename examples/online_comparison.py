#!/usr/bin/env python
"""Compare every online algorithm in the library across workload regimes.

For each workload family the script reports cost over the offline
optimum for: LCP (with and without a prediction window), the fractional
threshold rule, its randomized rounding (exact expectation), the
memoryless balancer, and the naive baselines.  The guarantees (3x for
LCP, 2x for the threshold family) frame the numbers.

Run:  python examples/online_comparison.py
"""

import numpy as np

from repro import LCP, ThresholdFractional, run_online
from repro.analysis import format_table, optimal_cost
from repro.online import (FollowTheMinimizer, MemorylessBalance,
                          expected_cost_exact)
from repro.workloads import (bursty_loads, capacity_for, diurnal_loads,
                             hotmail_like_loads, instance_from_loads,
                             onoff_loads, sawtooth_loads)


def workloads(T=168, seed=0):
    rng = np.random.default_rng(seed)
    yield "diurnal", diurnal_loads(T, peak=24.0, rng=rng)
    yield "hotmail-like", hotmail_like_loads(T, peak=24.0, rng=rng)
    yield "bursty", bursty_loads(T, peak=24.0, rng=rng)
    yield "on/off", onoff_loads(T, peak=24.0, rng=rng)
    yield "sawtooth", sawtooth_loads(T, peak=24.0, period=8)


def main() -> None:
    rows = []
    for name, loads in workloads():
        inst = instance_from_loads(loads, m=capacity_for(loads), beta=4.0,
                                   delay_weight=10.0)
        opt = optimal_cost(inst)
        frac = run_online(inst, ThresholdFractional())
        expected = expected_cost_exact(inst, frac.schedule)["total"]
        rows.append({
            "workload": name,
            "LCP": run_online(inst, LCP()).cost / opt,
            "LCP(w=6)": run_online(inst, LCP(lookahead=6)).cost / opt,
            "threshold": frac.cost / opt,
            "E[rounded]": expected / opt,
            "memoryless": run_online(inst, MemorylessBalance()).cost / opt,
            "follow-min": run_online(inst, FollowTheMinimizer()).cost / opt,
        })
    print(format_table(rows, floatfmt=".3f",
                       title="cost / offline optimum (guarantees: LCP<=3, "
                             "threshold & E[rounded]<=2)"))
    print("\nNotes:")
    print("- LCP's laziness shines on oscillating loads (sawtooth, on/off)")
    print("- the prediction window w=6 narrows the gap to the optimum")
    print("- E[rounded] equals the fractional cost exactly (Lemmas 19-20)")


if __name__ == "__main__":
    main()
