"""Small vectorized numeric kernels shared across solvers.

All kernels are NumPy-vectorized along the state axis (length ``m+1``)
following the project's HPC conventions: the time loop is sequential by
nature of the DP recurrences, so per-step work must be branch-free array
arithmetic.  Every helper operates along the *last* axis, so the same
code serves a single ``(m+1,)`` row and a whole ``(T, m+1)`` table —
the restricted solver's vectorized backtrack precomputes all rows in
one pass.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "prefix_min",
    "suffix_min",
    "prefix_argmin",
    "suffix_argmin",
    "suffix_argmin_first",
    "argmin_first",
    "argmin_last",
]


def prefix_min(v: np.ndarray) -> np.ndarray:
    """``out[..., j] = min(v[..., 0..j])`` (running minimum)."""
    return np.minimum.accumulate(v, axis=-1)


def suffix_min(v: np.ndarray) -> np.ndarray:
    """``out[..., j] = min(v[..., j..])`` (reverse running minimum)."""
    return np.minimum.accumulate(v[..., ::-1], axis=-1)[..., ::-1]


def prefix_argmin(v: np.ndarray) -> np.ndarray:
    """``out[..., j] = smallest i <= j with v[..., i] == min(v[..., 0..j])``."""
    pm = np.minimum.accumulate(v, axis=-1)
    n = v.shape[-1]
    idx = np.arange(n, dtype=np.int64)
    # A strict improvement at i starts a new prefix minimum; ties keep the
    # earlier index, so carrying the last strict-improvement index forward
    # yields the smallest index attaining each prefix minimum.
    strict = np.empty(v.shape, dtype=bool)
    strict[..., 0] = True
    strict[..., 1:] = v[..., 1:] < pm[..., :-1]
    first = np.where(strict, idx, 0)
    return np.maximum.accumulate(first, axis=-1)


def suffix_argmin(v: np.ndarray) -> np.ndarray:
    """``out[..., j] = largest i >= j with v[..., i] == min(v[..., j..])``."""
    r = prefix_argmin(v[..., ::-1])
    return v.shape[-1] - 1 - r[..., ::-1]


def suffix_argmin_first(v: np.ndarray) -> np.ndarray:
    """``out[..., j] = smallest i >= j with v[..., i] == min(v[..., j..])``."""
    w = v[..., ::-1]
    pm = np.minimum.accumulate(w, axis=-1)
    n = v.shape[-1]
    idx = np.arange(n, dtype=np.int64)
    # In the reversed view the *largest* attaining index maps back to
    # the smallest original one; an entry attains its running minimum
    # exactly when w <= pm (pm <= w always holds).
    attain = w <= pm
    last = np.where(attain, idx, 0)
    la = np.maximum.accumulate(last, axis=-1)
    return (n - 1) - la[..., ::-1]


def argmin_first(v: np.ndarray) -> int:
    """Index of the first (smallest-index) minimum of ``v``."""
    return int(np.argmin(v))


def argmin_last(v: np.ndarray) -> int:
    """Index of the last (largest-index) minimum of ``v``."""
    return int(v.size - 1 - np.argmin(v[::-1]))
